(* Operations observability: the sampled query log's pure sampling
   discipline and byte-exact codec, the window ring's telescoping
   algebra, order-insensitive merges (what makes --jobs views
   deterministic), the exposition formats, the live endpoint, and the
   invariant the serving plane stakes its contract on — a failing
   sink can never change an answer. *)

module Serve = Dnsv.Serve
module Loadgen = Dnsv.Loadgen
module Metrics = Trace.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let qcheck = List.map QCheck_alcotest.to_alcotest

let fi f =
  Faultinject.reset ();
  Fun.protect ~finally:Faultinject.reset f

let tmpfile () = Filename.temp_file "dnsv-test-obsv" ".qlog"
let rm p = try Sys.remove p with Sys_error _ -> ()

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let v3_cfg () = Engine.Versions.fixed Engine.Versions.v3_0

let mk_record i =
  {
    Obsv.Qlog.q_index = i;
    q_id = i land 0xFFFF;
    q_qname = "www.example.com";
    q_qtype = "A";
    q_disposition = "answered";
    q_rcode = "NOERROR";
    q_reason = "";
    q_latency_ms = 0.25;
    q_deadline_ms = 250.0;
  }

(* Answer [queries] datagrams of a 20%-malformed mix in-process and
   return the concatenated reply bytes (None replies become \000), so
   two legs can be compared byte-for-byte. *)
let serve_leg ?sink queries seed =
  let s = Serve.create ~config:(v3_cfg ()) Spec.Fixtures.reference_zone in
  (match sink with Some k -> Serve.attach_obsv s k | None -> ());
  let replies = Buffer.create 4096 in
  for i = 0 to queries - 1 do
    let _, d =
      Loadgen.datagram ~zone:Spec.Fixtures.reference_zone
        { Loadgen.queries; malformed_pct = 20; seed }
        i
    in
    match (Serve.handle s d).Serve.reply with
    | Some r -> Buffer.add_string replies r
    | None -> Buffer.add_char replies '\000'
  done;
  Buffer.contents replies

(* ------------------------------------------------------------------ *)
(* Qlog: sampling, codec, journal round-trip                          *)
(* ------------------------------------------------------------------ *)

let test_sampling_pure () =
  for i = 0 to 200 do
    check_bool "same (seed, index) same answer"
      (Obsv.Qlog.sampled ~seed:7 ~rate_pct:37 i)
      (Obsv.Qlog.sampled ~seed:7 ~rate_pct:37 i)
  done;
  let count seed rate =
    List.length
      (List.filter (Obsv.Qlog.sampled ~seed ~rate_pct:rate) (List.init 1000 Fun.id))
  in
  check_int "rate 0 samples nothing" 0 (count 3 0);
  check_int "rate 100 samples everything" 1000 (count 3 100);
  let c = count 5 30 in
  check_bool "rate 30 lands near 30% over 1000 indices" true
    (c > 150 && c < 450);
  let set seed =
    List.filter (Obsv.Qlog.sampled ~seed ~rate_pct:30) (List.init 1000 Fun.id)
  in
  check_bool "different seeds sample different index sets" true
    (set 1 <> set 2)

let prop_record_roundtrip =
  QCheck.Test.make ~count:500
    ~name:"qlog record codec round-trips byte-exactly (any bytes in fields)"
    QCheck.(pair small_nat small_nat)
    (fun (seed, i) ->
      let r = Random.State.make [| 0x0B5; seed; i |] in
      let str n =
        String.init (Random.State.int r n) (fun _ ->
            Char.chr (Random.State.int r 256))
      in
      let rc =
        {
          Obsv.Qlog.q_index = Random.State.int r 1_000_000;
          q_id = Random.State.int r 65536;
          q_qname = str 40;
          q_qtype = str 10;
          q_disposition = str 12;
          q_rcode = str 10;
          q_reason = str 24;
          q_latency_ms = Random.State.float r 1e4;
          q_deadline_ms = Random.State.float r 1e4;
        }
      in
      Obsv.Qlog.decode_record (Obsv.Qlog.encode_record rc) = Some rc)

let test_qlog_roundtrip () =
  let path = tmpfile () in
  let q = Obsv.Qlog.create ~path ~seed:9 ~rate_pct:100 () in
  for i = 0 to 49 do
    Obsv.Qlog.log q (mk_record i)
  done;
  check_int "all 50 logged at rate 100" 50 (Obsv.Qlog.logged q);
  Obsv.Qlog.close q;
  let back = Obsv.Qlog.read ~path in
  check_int "all 50 read back" 50 (List.length back);
  check_bool "records byte-exact in append order" true
    (List.mapi (fun i _ -> mk_record i) back = back);
  rm path;
  let path0 = tmpfile () in
  let q0 = Obsv.Qlog.create ~path:path0 ~seed:9 ~rate_pct:0 () in
  for i = 0 to 49 do
    Obsv.Qlog.log q0 (mk_record i)
  done;
  check_int "rate 0 logs nothing" 0 (Obsv.Qlog.logged q0);
  Obsv.Qlog.close q0;
  rm path0

let test_qlog_seed_replay () =
  let leg path =
    let s = Serve.create ~config:(v3_cfg ()) Spec.Fixtures.reference_zone in
    let q = Obsv.Qlog.create ~path ~seed:5 ~rate_pct:40 () in
    Serve.attach_obsv s (Obsv.sink ~qlog:q ());
    for i = 0 to 119 do
      ignore
        (Serve.handle s
           (snd
              (Loadgen.datagram ~zone:Spec.Fixtures.reference_zone
                 { Loadgen.queries = 120; malformed_pct = 20; seed = 0xAB }
                 i)))
    done;
    Obsv.Qlog.close q;
    Obsv.Qlog.read ~path
  in
  let p1 = tmpfile () and p2 = tmpfile () in
  let a = leg p1 and b = leg p2 in
  rm p1;
  rm p2;
  check_bool "a 40% rate samples some but not all of 120" true
    (List.length a > 0 && List.length a < 120);
  check_int "both runs sample the same count" (List.length a) (List.length b);
  let det (r : Obsv.Qlog.record) =
    ( r.Obsv.Qlog.q_index,
      r.Obsv.Qlog.q_id,
      r.Obsv.Qlog.q_qname,
      r.Obsv.Qlog.q_qtype,
      r.Obsv.Qlog.q_disposition,
      r.Obsv.Qlog.q_rcode,
      r.Obsv.Qlog.q_reason )
  in
  List.iter2
    (fun x y ->
      check_bool "deterministic fields replay identically" true
        (det x = det y))
    a b;
  List.iter
    (fun (r : Obsv.Qlog.record) ->
      check_bool "every logged index satisfies the pure sampler" true
        (Obsv.Qlog.sampled ~seed:5 ~rate_pct:40 r.Obsv.Qlog.q_index))
    a

let test_sink_fail_never_affects_answers () =
  fi (fun () ->
      let baseline = serve_leg 150 0xFA11 in
      let path = tmpfile () in
      let qlog = Obsv.Qlog.create ~path ~seed:1 ~rate_pct:100 () in
      let before = Metrics.snapshot () in
      Faultinject.arm ~persistent:true ~after:1 Faultinject.Obsv_sink_fail;
      let faulted =
        serve_leg
          ~sink:(Obsv.sink ~qlog ~windows:(Obsv.Windows.create ()) ())
          150 0xFA11
      in
      Faultinject.reset ();
      let d = Metrics.diff (Metrics.snapshot ()) before in
      check_string "byte-identical replies under a failing sink"
        (Digest.to_hex (Digest.string baseline))
        (Digest.to_hex (Digest.string faulted));
      check_bool "suppressions counted" true
        (Metrics.get d "obsv.sink_failures" > 0);
      check_int "nothing reached the journal" 0 (Obsv.Qlog.logged qlog);
      Obsv.Qlog.close qlog;
      rm path)

let test_sink_fail_partial () =
  fi (fun () ->
      let path = tmpfile () in
      let q = Obsv.Qlog.create ~path ~seed:1 ~rate_pct:100 () in
      (* One-shot on the 3rd append: that record vanishes before any
         byte lands, the journal stays intact, later records land. *)
      Faultinject.arm ~after:3 Faultinject.Obsv_sink_fail;
      for i = 0 to 9 do
        Obsv.Qlog.log q (mk_record i)
      done;
      check_int "one record suppressed" 9 (Obsv.Qlog.logged q);
      Obsv.Qlog.close q;
      let back = Obsv.Qlog.read ~path in
      check_int "later records landed after the fault" 9 (List.length back);
      check_bool "the suppressed index is the hole" true
        (not (List.exists (fun r -> r.Obsv.Qlog.q_index = 2) back));
      rm path)

(* ------------------------------------------------------------------ *)
(* Windows: ring algebra, derivation, alerts, merge determinism       *)
(* ------------------------------------------------------------------ *)

let prop_ring_telescopes =
  QCheck.Test.make ~count:30
    ~name:"sum(closed deltas) + current partial = since_create"
    QCheck.(list_of_size Gen.(1 -- 8) (list_of_size Gen.(0 -- 5) small_nat))
    (fun rounds ->
      let w = Obsv.Windows.create ~window_s:3600.0 ~windows:100 () in
      let c = Metrics.counter "test.obsv.ring" in
      let h = Metrics.histogram "test.obsv.ring_ms" in
      List.iter
        (fun bumps ->
          List.iter
            (fun n ->
              Metrics.add c n;
              Metrics.observe h (float_of_int (n + 1)))
            bumps;
          Obsv.Windows.roll w)
        rounds;
      Metrics.incr c;
      (* leave a partial open window *)
      let total =
        List.fold_left
          (fun acc (cl : Obsv.Windows.closed) ->
            Metrics.sum acc cl.Obsv.Windows.w_delta)
          Metrics.empty (Obsv.Windows.closed w)
      in
      let total = Metrics.sum total (Obsv.Windows.current_delta w) in
      let expect = Obsv.Windows.since_create w in
      Metrics.get total "test.obsv.ring" = Metrics.get expect "test.obsv.ring"
      && Metrics.get_hist total "test.obsv.ring_ms"
         = Metrics.get_hist expect "test.obsv.ring_ms")

let test_ring_eviction () =
  let w = Obsv.Windows.create ~window_s:3600.0 ~windows:3 () in
  for _ = 1 to 7 do
    Obsv.Windows.roll w
  done;
  let closed = Obsv.Windows.closed w in
  check_int "ring keeps at most its capacity" 3 (List.length closed);
  check_bool "newest first, monotone indices" true
    (List.map (fun c -> c.Obsv.Windows.w_index) closed = [ 6; 5; 4 ])

let test_derive_and_alerts () =
  let sf = Metrics.counter "serve.servfail" in
  let ans = Metrics.counter "serve.answered" in
  let h = Metrics.histogram "serve.latency_ms" in
  let w =
    Obsv.Windows.create ~window_s:3600.0 ~p99_limit_ms:0.5 ~servfail_limit:0.1
      ()
  in
  Metrics.add ans 8;
  Metrics.add sf 2;
  List.iter (Metrics.observe h)
    [ 0.2; 0.2; 0.2; 0.2; 0.2; 0.2; 0.2; 0.2; 4.0; 4.0 ];
  Obsv.Windows.roll w;
  match Obsv.Windows.closed w with
  | [ c ] ->
      let d = c.Obsv.Windows.w_derived in
      check_int "served counts every disposition" 10 d.Obsv.Windows.d_served;
      check_int "servfail delta" 2 d.Obsv.Windows.d_servfail;
      check_bool "servfail rate is servfail/served" true
        (abs_float (d.Obsv.Windows.d_servfail_rate -. 0.2) < 1e-9);
      check_bool "p99 upper bound covers the max sample" true
        (d.Obsv.Windows.d_p99_ms >= 4.0);
      check_int "both SLO thresholds fired" 2
        (List.length c.Obsv.Windows.w_alerts);
      check_int "alerts_total remembers them" 2 (Obsv.Windows.alerts_total w);
      (* derivation is pure: same delta + elapsed, same answer *)
      check_bool "derive is pure" true
        (Obsv.Windows.derive ~elapsed_s:c.Obsv.Windows.w_elapsed_s
           c.Obsv.Windows.w_delta
        = d)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 closed window, got %d"
                          (List.length l))

let mk_delta bumps =
  let before = Metrics.snapshot () in
  List.iter
    (fun (i, v) ->
      Metrics.add (Metrics.counter ("test.obsv.m" ^ string_of_int (i mod 4))) v)
    bumps;
  Metrics.diff (Metrics.snapshot ()) before

let prop_merge_order_insensitive =
  QCheck.Test.make ~count:100
    ~name:"window merges are order-insensitive (sum commutes/associates)"
    QCheck.(
      triple
        (small_list (pair small_nat small_nat))
        (small_list (pair small_nat small_nat))
        (small_list (pair small_nat small_nat)))
    (fun (xs, ys, zs) ->
      let a = mk_delta xs and b = mk_delta ys and c = mk_delta zs in
      Metrics.sum a b = Metrics.sum b a
      && Metrics.sum (Metrics.sum a b) c = Metrics.sum a (Metrics.sum b c))

let test_absorb_multidomain () =
  let before = Metrics.snapshot () in
  let worker =
    Domain.spawn (fun () ->
        let b = Metrics.snapshot () in
        Metrics.add (Metrics.counter "test.obsv.dom") 7;
        Metrics.observe (Metrics.histogram "test.obsv.dom_ms") 3.0;
        Metrics.diff (Metrics.snapshot ()) b)
  in
  let delta = Domain.join worker in
  check_int "the worker's cells are its own" 7
    (Metrics.get delta "test.obsv.dom");
  Metrics.absorb delta;
  let now = Metrics.diff (Metrics.snapshot ()) before in
  check_int "absorbed counter lands in this domain" 7
    (Metrics.get now "test.obsv.dom");
  match Metrics.get_hist now "test.obsv.dom_ms" with
  | Some h -> check_int "absorbed histogram lands too" 1 h.Metrics.h_count
  | None -> Alcotest.fail "absorbed histogram missing"

(* ------------------------------------------------------------------ *)
(* Exposition + endpoint + report                                     *)
(* ------------------------------------------------------------------ *)

let test_identity () =
  {
    Obsv.Expo.id_version = "test 1";
    id_engine = "3.0-fixed";
    id_zone = "example.com";
  }

let test_expo () =
  let w = Obsv.Windows.create ~window_s:3600.0 () in
  Metrics.incr (Metrics.counter "serve.answered");
  Metrics.observe (Metrics.histogram "serve.latency_ms") 0.7;
  Obsv.Windows.roll w;
  let snap = Metrics.snapshot () in
  let text = Obsv.Expo.prometheus ~identity:(test_identity ()) ~windows:w snap in
  List.iter
    (fun needle ->
      check_bool ("prometheus exposition has " ^ needle) true
        (contains text needle))
    [
      "dnsv_build_info{";
      "engine=\"3.0-fixed\"";
      "dnsv_serve_answered_total";
      "dnsv_serve_latency_ms_bucket{le=\"";
      "dnsv_serve_latency_ms_count";
      "dnsv_window_qps";
      "dnsv_windows_closed_total";
    ];
  List.iter
    (fun line ->
      if String.length line > 0 then
        check_bool ("well-formed exposition line: " ^ line) true
          (line.[0] = '#'
          || String.length line > 5 && String.sub line 0 5 = "dnsv_"))
    (String.split_on_char '\n' text);
  let body = Obsv.Expo.json ~identity:(test_identity ()) ~windows:w snap in
  match Trace.Json.parse body with
  | Error e -> Alcotest.fail ("exposition JSON does not parse: " ^ e)
  | Ok j -> (
      (match Trace.Json.member "identity" j with
      | Some idj -> (
          match Trace.Json.member "engine" idj with
          | Some (Trace.Json.Str s) -> check_string "identity engine" "3.0-fixed" s
          | _ -> Alcotest.fail "identity.engine missing")
      | None -> Alcotest.fail "identity missing");
      match Trace.Json.member "windows" j with
      | Some (Trace.Json.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "windows array missing or empty")

let test_endpoint_roundtrip () =
  let ep = Obsv.Endpoint.create () in
  let s = Serve.create ~config:(v3_cfg ()) Spec.Fixtures.reference_zone in
  let c = Unix.socket PF_INET SOCK_DGRAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close c with Unix.Unix_error _ -> ());
      Obsv.Endpoint.close ep)
    (fun () ->
      Unix.connect c
        (ADDR_INET (Unix.inet_addr_loopback, Obsv.Endpoint.port ep));
      ignore (Unix.send c (Bytes.of_string "json") 0 4 []);
      check_bool "request served" true
        (Obsv.Endpoint.serve_request ep ~respond:(Serve.exposition s));
      match Unix.select [ c ] [] [] 2.0 with
      | [], _, _ -> Alcotest.fail "no reply from the endpoint"
      | _ -> (
          let b = Bytes.create 65536 in
          let n = Unix.recv c b 0 (Bytes.length b) [] in
          match Trace.Json.parse (Bytes.sub_string b 0 n) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("endpoint JSON does not parse: " ^ e)))

(* Full serving-plane round trip in a forked child: serve_udp with a
   multiplexed stats endpoint, a real query, a mid-load scrape, then
   SIGTERM -> the loop stops cooperatively and the child exits 0. *)
let test_graceful_shutdown () =
  let r, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let s = Serve.create ~config:(v3_cfg ()) Spec.Fixtures.reference_zone in
      Serve.attach_obsv s (Obsv.sink ~windows:(Obsv.Windows.create ()) ());
      let ep = Obsv.Endpoint.create () in
      Serve.clear_stop ();
      Serve.install_stop_signals ();
      let ready port =
        let msg = Printf.sprintf "%d %d\n" port (Obsv.Endpoint.port ep) in
        ignore (Unix.write_substring wr msg 0 (String.length msg));
        Unix.close wr
      in
      (try Serve.serve_udp ~ready ~stats:ep ~port:0 s
       with _ -> Unix._exit 3);
      Unix._exit 0
  | pid ->
      Unix.close wr;
      let buf = Bytes.create 64 in
      let n = Unix.read r buf 0 64 in
      Unix.close r;
      let qport, sport =
        Scanf.sscanf (Bytes.sub_string buf 0 n) "%d %d" (fun a b -> (a, b))
      in
      let answered =
        Loadgen.with_udp ~timeout_s:2.0
          (ADDR_INET (Unix.inet_addr_loopback, qport))
          (fun t ->
            let _, d =
              Loadgen.datagram ~zone:Spec.Fixtures.reference_zone
                { Loadgen.queries = 1; malformed_pct = 0; seed = 1 }
                0
            in
            t d <> None)
      in
      check_bool "child answered a live query" true answered;
      (match
         Obsv.Endpoint.scrape ~timeout_s:2.0 ~host:"127.0.0.1" ~port:sport
           `Text
       with
      | Ok body ->
          check_bool "scrape under load is Prometheus text" true
            (contains body "dnsv_build_info{")
      | Error e -> Alcotest.fail ("scrape: " ^ e));
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED c ->
          Alcotest.fail (Printf.sprintf "child exited %d, wanted 0" c)
      | _ -> Alcotest.fail "child did not exit normally")

let test_report_to_json () =
  let h = Metrics.histogram "test.obsv.report_ms" in
  List.iter (Metrics.observe h) [ 0.3; 0.9; 2.5 ];
  let (), forest =
    Trace.recording (fun () -> Trace.with_span "t.report" (fun () -> ()))
  in
  let chrome = Trace.chrome_json ~metrics:(Metrics.snapshot ()) forest in
  match Trace.Report.of_string chrome with
  | Error e -> Alcotest.fail ("report load: " ^ e)
  | Ok rep -> (
      let body = Trace.Report.to_json rep in
      match Trace.Json.parse body with
      | Error e -> Alcotest.fail ("report --json does not parse: " ^ e)
      | Ok j ->
          List.iter
            (fun k ->
              check_bool ("report json has " ^ k) true
                (Trace.Json.member k j <> None))
            [ "phases"; "counters"; "histograms" ])

let test_quantile_bounds () =
  let h = Metrics.histogram "test.obsv.qb_ms" in
  let before = Metrics.snapshot () in
  List.iter (Metrics.observe h) [ 0.3; 0.6; 1.2; 2.5; 70.0 ];
  let d = Metrics.diff (Metrics.snapshot ()) before in
  (match Metrics.get_hist d "test.obsv.qb_ms" with
  | None -> Alcotest.fail "histogram missing"
  | Some hist ->
      List.iter
        (fun q ->
          let lo, hi = Metrics.hist_quantile_bounds hist q in
          check_bool "hi is exactly hist_quantile's report" true
            (hi = Metrics.hist_quantile hist q);
          check_bool "the bracket is at most a factor of two" true
            (lo = 0.0 || hi /. lo <= 2.0 +. 1e-9);
          check_bool "lo < hi" true (lo < hi))
        [ 0.5; 0.9; 0.99; 1.0 ]);
  let lo, hi =
    Metrics.hist_quantile_bounds
      { Metrics.h_count = 0; h_sum = 0.0; h_buckets = [||] }
      0.9
  in
  check_bool "empty histogram brackets to (0, 0)" true (lo = 0.0 && hi = 0.0);
  (* the loadgen surfaces the same bounds *)
  let s = Serve.create ~config:(v3_cfg ()) Spec.Fixtures.reference_zone in
  let r =
    Loadgen.run ~zone:Spec.Fixtures.reference_zone (Loadgen.inproc s)
      { Loadgen.queries = 40; malformed_pct = 0; seed = 0x0B }
  in
  check_bool "loadgen p99 bracket is ordered" true
    (r.Loadgen.lg_p99_lo_ms < r.Loadgen.lg_p99_ms);
  check_bool "loadgen p50 bracket is ordered" true
    (r.Loadgen.lg_p50_lo_ms < r.Loadgen.lg_p50_ms)

let () =
  Alcotest.run "obsv"
    [
      (* First: Unix.fork is illegal once any domain has been spawned
         (the absorb test spawns one), so the forked end-to-end test
         must run before everything else. *)
      ( "serve",
        [
          Alcotest.test_case "graceful shutdown end-to-end" `Quick
            test_graceful_shutdown;
        ] );
      ( "qlog",
        qcheck [ prop_record_roundtrip ]
        @ [
            Alcotest.test_case "sampling is pure and rate-bounded" `Quick
              test_sampling_pure;
            Alcotest.test_case "journal round-trip" `Quick test_qlog_roundtrip;
            Alcotest.test_case "seed-pure replay" `Quick test_qlog_seed_replay;
            Alcotest.test_case "failing sink never affects answers" `Quick
              test_sink_fail_never_affects_answers;
            Alcotest.test_case "suppression leaves the journal intact" `Quick
              test_sink_fail_partial;
          ] );
      ( "windows",
        qcheck [ prop_ring_telescopes; prop_merge_order_insensitive ]
        @ [
            Alcotest.test_case "ring eviction keeps newest" `Quick
              test_ring_eviction;
            Alcotest.test_case "derive + SLO alerts" `Quick
              test_derive_and_alerts;
            Alcotest.test_case "absorb merges a worker domain" `Quick
              test_absorb_multidomain;
          ] );
      ( "expo",
        [
          Alcotest.test_case "prometheus + JSON exposition" `Quick test_expo;
          Alcotest.test_case "endpoint request/reply" `Quick
            test_endpoint_roundtrip;
          Alcotest.test_case "report --json shape" `Quick test_report_to_json;
          Alcotest.test_case "quantile error bounds" `Quick
            test_quantile_bounds;
        ] );
    ]
