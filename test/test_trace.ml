(* Tests for the observability layer of this PR: the metrics registry's
   absorb/diff algebra, the deterministic worker merge at the domain
   pool's join barrier, and the tracing sink.

   The load-bearing properties:

   - [Metrics.sum]/[Metrics.diff] are pointwise inverse, and a delta
     [absorb]ed into the calling domain reads back exactly via [diff];
   - a workload fanned over the domain pool leaves the caller's
     registry in the same state as running it single-domain — the
     worker deltas merge deterministically and losslessly;
   - tracing is invisible to verification: recording a span tree
     changes no verdict fingerprint, and the disabled sink records
     nothing;
   - the deterministic span skeleton ([tree_fingerprint]) is identical
     across [--jobs] and replayable under a fixed fault seed;
   - the Chrome export round-trips through [Trace.Report]. *)

module M = Trace.Metrics

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Registered synthetic metrics (module init, like production code)   *)
(* ------------------------------------------------------------------ *)

let c_a = M.counter "test.trace.a"
let c_b = M.counter "test.trace.b"
let c_c = M.counter "test.trace.c"
let h_x = M.histogram "test.trace.x"

(* A snapshot over the synthetic names only: registry state owned by
   this test, untouched by the pipeline. *)
let names = [ "test.trace.a"; "test.trace.b"; "test.trace.c" ]
let hist_names = [ "test.trace.x" ]

let restrict (s : M.snapshot) : M.snapshot =
  {
    M.counters =
      List.filter (fun (n, _) -> List.mem n names) s.M.counters;
    M.hists = List.filter (fun (n, _) -> List.mem n hist_names) s.M.hists;
  }

let hist_eq (a : M.hist) (b : M.hist) =
  a.M.h_count = b.M.h_count
  && Float.abs (a.M.h_sum -. b.M.h_sum) < 1e-9
  && a.M.h_buckets = b.M.h_buckets

let snapshot_eq (a : M.snapshot) (b : M.snapshot) =
  let counter n s = M.get s n in
  let hist n s =
    match M.get_hist s n with
    | Some h -> h
    | None -> { M.h_count = 0; h_sum = 0.0; h_buckets = [||] }
  in
  List.for_all (fun n -> counter n a = counter n b) names
  && List.for_all
       (fun n ->
         let ha = hist n a and hb = hist n b in
         (ha.M.h_count = 0 && hb.M.h_count = 0) || hist_eq ha hb)
       hist_names

(* ------------------------------------------------------------------ *)
(* QCheck: sum/diff inverse, absorb/diff inverse                      *)
(* ------------------------------------------------------------------ *)

(* A random delta over the synthetic metrics, realized by *performing*
   it (bumping the registered cells) so it is a delta the registry
   itself could produce. *)
let workload_gen : (int * int * int * float list) QCheck.Gen.t =
  let open QCheck.Gen in
  let small = int_range 0 50 in
  let obs = list_size (int_range 0 8) (float_range 0.001 100.0) in
  map
    (fun ((a, b), (c, xs)) -> (a, b, c, xs))
    (pair (pair small small) (pair small obs))

let perform (a, b, c, xs) =
  M.add c_a a;
  M.add c_b b;
  M.add c_c c;
  List.iter (M.observe h_x) xs

let delta_of_workload w =
  let s0 = M.snapshot () in
  perform w;
  restrict (M.diff (M.snapshot ()) s0)

let prop_sum_diff_inverse =
  QCheck.Test.make ~count:100 ~name:"diff (sum a b) b = a"
    (QCheck.make (QCheck.Gen.pair workload_gen workload_gen))
    (fun (wa, wb) ->
      let a = delta_of_workload wa in
      let b = delta_of_workload wb in
      snapshot_eq (M.diff (M.sum a b) b) a
      && snapshot_eq (M.diff (M.sum b a) a) b)

let prop_absorb_diff_inverse =
  QCheck.Test.make ~count:100 ~name:"absorb d then diff reads back d"
    (QCheck.make workload_gen)
    (fun w ->
      let d = delta_of_workload w in
      let s0 = M.snapshot () in
      M.absorb d;
      snapshot_eq (restrict (M.diff (M.snapshot ()) s0)) d)

(* ------------------------------------------------------------------ *)
(* Worker merge at the join barrier                                   *)
(* ------------------------------------------------------------------ *)

(* The same deterministic task list run single-domain and fanned over
   the pool must leave the caller's registry with identical deltas:
   the pool captures each worker's per-task delta and absorbs them in
   task order at the join barrier. *)
let merge_tasks_gen : (int * int * int * float list) list QCheck.Gen.t =
  QCheck.Gen.(list_size (int_range 1 12) workload_gen)

let prop_worker_merge_equals_single_domain =
  QCheck.Test.make ~count:25
    ~name:"pool-merged metrics equal single-domain metrics"
    (QCheck.make merge_tasks_gen)
    (fun tasks ->
      let run jobs =
        let s0 = M.snapshot () in
        ignore (Parallel.Domainpool.map ~jobs perform tasks);
        restrict (M.diff (M.snapshot ()) s0)
      in
      snapshot_eq (run 1) (run 4))

(* ------------------------------------------------------------------ *)
(* Tracing is invisible to verification                               *)
(* ------------------------------------------------------------------ *)

let qtypes = [ Dns.Rr.A; Dns.Rr.MX ]

let verify_fp ?(jobs = 1) () =
  Dnsv.Pipeline.verify ~qtypes ~check_layers:false ~budget:(Budget.create ())
    ~jobs
    (Engine.Versions.fixed Engine.Versions.v3_0)
    Spec.Fixtures.reference_zone
  |> Dnsv.Pipeline.fingerprint

let test_tracing_preserves_verdicts () =
  let plain = verify_fp () in
  let traced, forest = Trace.recording (fun () -> verify_fp ()) in
  check_string "recording a trace changes no verdict fingerprint" plain traced;
  check_bool "the recording actually captured spans" true
    (Trace.span_count forest > 0);
  (* And with the sink back off, nothing is recorded. *)
  let _, off_forest = Trace.capture (fun () -> verify_fp ()) in
  check_int "disabled sink records nothing" 0 (Trace.span_count off_forest)

let test_span_tree_independent_of_jobs () =
  let tree jobs =
    let _, forest = Trace.recording (fun () -> verify_fp ~jobs ()) in
    Trace.tree_fingerprint forest
  in
  check_string "span-tree fingerprint: jobs=4 equals jobs=1" (tree 1) (tree 4)

let test_span_tree_replayable_under_faults () =
  let tree () =
    (* Replayability is over identical starting state: scrub the solver
       caches and summary memo so both runs are cold — a fault that
       fires on the Nth arrival (e.g. the Nth budget tick) would
       otherwise land in a different span on the warm run. *)
    Smt.Solver.clear_caches ();
    Dnsv.Pipeline.clear_summary_memo ();
    Faultinject.reset ();
    Dnsv.Chaos.arm_plan (Dnsv.Chaos.plan_of_seed 3);
    let _, forest =
      Trace.recording (fun () ->
          try ignore (verify_fp ()) with _ -> ())
    in
    Faultinject.reset ();
    Trace.tree_fingerprint forest
  in
  let first = tree () in
  check_string "same fault seed, same span tree" first (tree ())

(* ------------------------------------------------------------------ *)
(* Chrome export round-trip                                           *)
(* ------------------------------------------------------------------ *)

let test_chrome_roundtrip () =
  let _, forest = Trace.recording (fun () -> verify_fp ()) in
  let m0 = M.snapshot () in
  let json = Trace.chrome_json ~metrics:m0 forest in
  match Trace.Report.of_string json with
  | Error e -> Alcotest.failf "report did not parse its own export: %s" e
  | Ok r ->
      let count_rspans spans =
        let rec go acc (sp : Trace.Report.rspan) =
          List.fold_left go (acc + 1) sp.Trace.Report.r_children
        in
        List.fold_left go 0 spans
      in
      check_int "every span survives the round-trip"
        (Trace.span_count forest)
        (count_rspans r.Trace.Report.spans);
      check_bool "check spans present" true
        (Trace.Report.find_spans r ~name:"check" <> []);
      check_bool "solver.checks counter present and nonzero" true
        (List.exists
           (fun (n, v) -> n = "solver.checks" && v > 0)
           r.Trace.Report.counters)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "trace"
    [
      ( "metrics",
        qcheck
          [
            prop_sum_diff_inverse;
            prop_absorb_diff_inverse;
            prop_worker_merge_equals_single_domain;
          ] );
      ( "tracing",
        [
          Alcotest.test_case "recording changes no verdict" `Quick
            test_tracing_preserves_verdicts;
          Alcotest.test_case "span tree independent of jobs" `Quick
            test_span_tree_independent_of_jobs;
          Alcotest.test_case "span tree replayable under fault seed" `Quick
            test_span_tree_replayable_under_faults;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome JSON round-trips through Report" `Quick
            test_chrome_roundtrip;
        ] );
    ]
