(* Seeded solver-fuzz smoke battery: random CNFs through the CDCL core
   against a brute-force reference evaluator, random LIA conjunctions
   through presolve + branch-and-bound, and random boolean-structure
   terms through the DPLL(T) loop with learning/presolve on vs. off.

   Deterministic: every case is a pure function of (seed, index), so a
   failure replays with the same arguments. Usage:

     fuzz_solver [cases] [seed]     (defaults: 2000 cases, seed 213)

   Exits 1 on the first discrepancy, printing the reproducer. *)

open Smt

let cases = ref 2000
let seed = ref 213

let () =
  (match Sys.argv with
  | [| _ |] -> ()
  | [| _; n |] -> cases := int_of_string n
  | [| _; n; s |] ->
      cases := int_of_string n;
      seed := int_of_string s
  | _ ->
      prerr_endline "usage: fuzz_solver [cases] [seed]";
      exit 2)

let rng = Random.State.make [| !seed |]
let range lo hi = lo + Random.State.int rng (hi - lo + 1)

let fail i what detail =
  Printf.eprintf "FAIL case %d (seed %d): %s\n%s\n" i !seed what detail;
  exit 1

(* ---- CNF leg ----------------------------------------------------- *)

let print_cnf clauses =
  String.concat "; "
    (List.map
       (fun c -> String.concat "," (List.map string_of_int c))
       clauses)

let gen_cnf () =
  let nvars = range 1 8 in
  let n_clauses = range 0 20 in
  let clause () =
    List.init (range 1 4) (fun _ ->
        let v = range 1 nvars in
        if Random.State.bool rng then v else -v)
  in
  (nvars, List.init n_clauses (fun _ -> clause ()))

let assignment_satisfies value clauses =
  List.for_all
    (List.exists (fun l -> if l > 0 then value l else not (value (-l))))
    clauses

let brute_sat nvars clauses =
  let n = 1 lsl nvars in
  let rec go i =
    i < n
    && (assignment_satisfies (fun v -> i land (1 lsl (v - 1)) <> 0) clauses
       || go (i + 1))
  in
  go 0

let cnf_case i =
  let nvars, clauses = gen_cnf () in
  let t = Sat.create ~nvars clauses in
  (match Sat.solve t with
  | Sat.Sat a ->
      if not (assignment_satisfies (fun v -> a.(v)) clauses) then
        fail i "CDCL model does not satisfy the CNF" (print_cnf clauses)
  | Sat.Unsat ->
      if brute_sat nvars clauses then
        fail i "CDCL answered Unsat on a satisfiable CNF" (print_cnf clauses));
  if not (Sat.validate t) then
    fail i "learned-clause chain replay failed" (print_cnf clauses)

(* ---- LIA leg ----------------------------------------------------- *)

let gen_lin () =
  Linear.add
    (Linear.add
       (Linear.var ~coeff:(range (-3) 3) "x")
       (Linear.var ~coeff:(range (-3) 3) "y"))
    (Linear.const (range (-6) 6))

let gen_atom () =
  let l = gen_lin () in
  match range 0 2 with
  | 0 -> Linear.Le_zero l
  | 1 -> Linear.Eq_zero l
  | _ -> Linear.Neq_zero l

let print_atoms atoms =
  String.concat "; "
    (List.map (fun a -> Format.asprintf "%a" Linear.pp_atom a) atoms)

let lia_brute_sat atoms =
  (* One-sided window search: a hit inside [-10,10]^2 refutes Unsat. *)
  let dom = List.init 21 (fun i -> i - 10) in
  List.exists
    (fun xv ->
      List.exists
        (fun yv ->
          let env = function "x" -> xv | "y" -> yv | _ -> 0 in
          List.for_all (Linear.eval_atom env) atoms)
        dom)
    dom

let lia_case i =
  let atoms = List.init (range 1 6) (fun _ -> gen_atom ()) in
  let env_of m k = Option.value ~default:0 (Lia.String_map.find_opt k m) in
  (match Lia.check atoms with
  | Lia.Sat m ->
      if not (List.for_all (Linear.eval_atom (env_of m)) atoms) then
        fail i "LIA model does not satisfy the conjunction" (print_atoms atoms)
  | Lia.Unsat ->
      if lia_brute_sat atoms then
        fail i "LIA answered Unsat on a satisfiable conjunction"
          (print_atoms atoms)
  | Lia.Unknown -> ());
  match Lia.presolve atoms with
  | Lia.Punsat _ ->
      if lia_brute_sat atoms then
        fail i "presolve pruned a satisfiable conjunction" (print_atoms atoms)
  | Lia.Pfeasible _ -> ()

(* ---- DPLL(T) leg ------------------------------------------------- *)

let x = Term.int_var "x"
let y = Term.int_var "y"
let z = Term.int_var "z"

let gen_term () =
  let leaf () =
    if Random.State.bool rng then Term.int (range (-4) 4)
    else List.nth [ x; y; z ] (range 0 2)
  in
  let cmp () =
    let a = leaf () and b = leaf () in
    match range 0 2 with
    | 0 -> Term.eq a b
    | 1 -> Term.le a b
    | _ -> Term.lt a b
  in
  let rec go depth =
    if depth = 0 then cmp ()
    else
      match range 0 4 with
      | 0 -> cmp ()
      | 1 -> Term.and_ [ go (depth - 1); go (depth - 1) ]
      | 2 -> Term.or_ [ go (depth - 1); go (depth - 1) ]
      | 3 -> Term.not_ (go (depth - 1))
      | _ -> Term.implies (go (depth - 1)) (go (depth - 1))
  in
  go (range 1 3)

let term_brute_sat t =
  let dom = [ -3; -2; -1; 0; 1; 2; 3 ] in
  List.exists
    (fun xv ->
      List.exists
        (fun yv ->
          List.exists
            (fun zv ->
              let env = function
                | "x" -> Some (Term.VInt xv)
                | "y" -> Some (Term.VInt yv)
                | "z" -> Some (Term.VInt zv)
                | _ -> None
              in
              Term.eval_bool env t)
            dom)
        dom)
    dom

let status = function
  | Solver.Sat _ -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown -> "unknown"

let dpllt_case i =
  let t = gen_term () in
  let cdcl = Solver.check_dpllt t in
  Solver.set_presolve false;
  Solver.set_learning false;
  let old = Solver.check_dpllt t in
  Solver.set_presolve true;
  Solver.set_learning true;
  if not (String.equal (status cdcl) (status old)) then
    fail i
      (Printf.sprintf "CDCL verdict %s differs from legacy %s" (status cdcl)
         (status old))
      (Term.to_string t);
  match cdcl with
  | Solver.Sat m ->
      if not (Model.satisfies m t) then
        fail i "DPLL(T) model does not satisfy the term" (Term.to_string t)
  | Solver.Unsat ->
      if term_brute_sat t then
        fail i "DPLL(T) answered Unsat on a satisfiable term"
          (Term.to_string t)
  | Solver.Unknown -> ()

(* ------------------------------------------------------------------ *)

let () =
  for i = 1 to !cases do
    match i mod 3 with
    | 0 -> cnf_case i
    | 1 -> lia_case i
    | _ -> dpllt_case i
  done;
  Printf.printf
    "fuzz_solver: %d cases clean (seed %d): CNF vs reference, LIA + \
     presolve, DPLL(T) CDCL vs legacy\n"
    !cases !seed
