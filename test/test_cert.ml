(* Certificate, journal, and journaled-batch tests.

   The trust-architecture properties: every Sat/Unsat verdict carries a
   certificate the solver-independent checker accepts; Unknown is never
   cached; a corrupted cache entry is always caught by certificate
   re-validation (degrading the verdict, never flipping it); a batch
   run killed mid-journal-write resumes into a transcript byte-identical
   to an uninterrupted run's. *)

module Term = Smt.Term
module Solver = Smt.Solver
module Proof = Smt.Proof
module Rr = Dns.Rr
module Name = Dns.Name
module Versions = Engine.Versions
module Pipeline = Dnsv.Pipeline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The solver only validates when a checker is installed; do not rely
   on some other module's initializer having run first. *)
let () = Cert.install ()

(* Faults and caches are global state: run each test from a clean slate
   and leave one behind even on failure. *)
let fi (f : unit -> unit) () =
  Faultinject.reset ();
  Solver.clear_caches ();
  Pipeline.clear_summary_memo ();
  Fun.protect f ~finally:(fun () ->
      Faultinject.reset ();
      Solver.clear_caches ();
      Pipeline.clear_summary_memo ())

let x = Term.int_var "x"
let y = Term.int_var "y"
let z = Term.int_var "z"

let kind = function
  | Solver.Sat _ -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown -> "unknown"

let flip = function "sat" -> "unsat" | "unsat" -> "sat" | k -> k

(* ------------------------------------------------------------------ *)
(* The checker accepts every certificate the solver produces          *)
(* ------------------------------------------------------------------ *)

let fixed_conjunctions : Term.t list list =
  [
    [ Term.le x (Term.int 3); Term.le (Term.int 5) x ];
    [ Term.eq x (Term.int 2); Term.eq y (Term.int 3); Term.le x y ];
    [ Term.lt x y; Term.lt y z; Term.lt z x ];
    [ Term.not_ (Term.eq x y); Term.le x y; Term.le y x ];
    [ Term.eq (Term.add [ x; y ]) (Term.int 4); Term.eq (Term.sub x y) (Term.int 1) ];
    [ Term.le (Term.mul_const 2 x) (Term.int 7); Term.le (Term.int 4) x ];
    [ Term.bool_var "p"; Term.not_ (Term.bool_var "p") ];
    [ Term.or_ [ Term.bool_var "p"; Term.le x (Term.int 0) ];
      Term.not_ (Term.bool_var "p"); Term.le (Term.int 1) x ];
  ]

let test_solver_certificates_validate () =
  List.iter
    (fun ts ->
      match Solver.check_core_cert ts with
      | Solver.Sat m, Some (Proof.Model_witness m') ->
          check_bool "model matches witness" true (m == m' || m = m');
          (match Cert.validate_sat ts m with
          | Proof.Valid -> ()
          | Proof.Invalid why -> Alcotest.failf "sat cert rejected: %s" why)
      | Solver.Unsat, Some (Proof.Unsat_witness tree) -> (
          match Cert.validate_unsat ts tree with
          | Proof.Valid -> ()
          | Proof.Invalid why -> Alcotest.failf "unsat cert rejected: %s" why)
      | Solver.Unknown, _ -> Alcotest.fail "fixture should be decidable"
      | r, _ ->
          Alcotest.failf "missing or mismatched certificate for %s" (kind r))
    fixed_conjunctions

(* The checker is not a rubber stamp: a proof citing facts that were
   never asserted, or a model violating an assertion, is rejected. *)
let test_checker_rejects_bogus_certificates () =
  let ts = [ Term.le x (Term.int 3) ] (* satisfiable *) in
  let bogus =
    Proof.Farkas
      [ { Proof.fact = Term.le x (Term.int (-1)); lam = Proof.coeff_of_ints 1 1 } ]
  in
  (match Cert.validate_unsat ts bogus with
  | Proof.Invalid _ -> ()
  | Proof.Valid -> Alcotest.fail "unsat cert citing unasserted facts accepted");
  let m = Smt.Model.add_int "x" 7 Smt.Model.empty in
  (match Cert.validate_sat ts m with
  | Proof.Invalid _ -> ()
  | Proof.Valid -> Alcotest.fail "model violating the assertion accepted");
  (* An empty Farkas combination proves nothing. *)
  match Cert.validate_unsat [ Term.le x (Term.int 3) ] (Proof.Farkas []) with
  | Proof.Invalid _ -> ()
  | Proof.Valid -> Alcotest.fail "empty Farkas combination accepted"

(* ------------------------------------------------------------------ *)
(* QCheck: caching under certification                                *)
(* ------------------------------------------------------------------ *)

let conj_gen : Term.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let int_leaf =
    oneof [ map Term.int (int_range (-4) 4); oneofl [ x; y; z ] ]
  in
  let int_term =
    oneof
      [
        int_leaf;
        map2 (fun a b -> Term.add [ a; b ]) int_leaf int_leaf;
        map2 Term.sub int_leaf int_leaf;
        map (fun a -> Term.mul_const 2 a) int_leaf;
      ]
  in
  let cmp =
    oneof
      [
        map2 Term.eq int_term int_term;
        map2 Term.le int_term int_term;
        map2 Term.lt int_term int_term;
      ]
  in
  let lit = oneof [ cmp; map Term.not_ cmp ] in
  list_size (int_range 1 6) lit

let arb_conj =
  QCheck.make
    ~print:(fun ts -> String.concat " /\\ " (List.map Term.to_string ts))
    conj_gen

(* A cache hit replays exactly what a scratch solve decides. *)
let prop_cache_hit_equals_scratch =
  QCheck.Test.make ~name:"cache hit = scratch solve (certified)" ~count:300
    arb_conj (fun ts ->
      Faultinject.reset ();
      Solver.clear_caches ();
      let scratch = Solver.check ts in
      let hit = Solver.check ts in
      Solver.clear_caches ();
      let rescratch = Solver.check ts in
      kind scratch = kind hit && kind hit = kind rescratch)

(* A forced Unknown must not poison the memo: the next identical query
   re-solves and gets the honest answer. *)
let prop_unknown_never_cached =
  QCheck.Test.make ~name:"Unknown answers are never cached" ~count:300
    arb_conj (fun ts ->
      Faultinject.reset ();
      Solver.clear_caches ();
      let honest = Solver.check ts in
      Solver.clear_caches ();
      Faultinject.arm ~after:1 Faultinject.Solver_unknown;
      let forced = Solver.check ts in
      let after = Solver.check ts in
      Faultinject.reset ();
      kind forced = "unknown" && kind after = kind honest)

(* A corrupted cache entry is caught by certificate re-validation:
   the answer may degrade to Unknown but can never flip. *)
let prop_corruption_always_caught =
  QCheck.Test.make ~name:"corrupted cache entry always caught" ~count:300
    arb_conj (fun ts ->
      Faultinject.reset ();
      Solver.clear_caches ();
      let honest = Solver.check ts in
      QCheck.assume (kind honest <> "unknown");
      let failures_before = (Solver.stats ()).Solver.cert_failures in
      Faultinject.arm ~persistent:true ~after:1 Faultinject.Cache_corrupt;
      let corrupted = Solver.check ts in
      Faultinject.reset ();
      (* The poisoned entry persists in the table; validation must keep
         rejecting it on every later hit too. *)
      let later = Solver.check ts in
      let failures_after = (Solver.stats ()).Solver.cert_failures in
      Solver.clear_caches ();
      let never_flipped =
        kind corrupted <> flip (kind honest) && kind later <> flip (kind honest)
      in
      let caught =
        kind corrupted = kind honest || failures_after > failures_before
      in
      never_flipped && caught)

(* ------------------------------------------------------------------ *)
(* Cache corruption surfaces as a Cert_invalid verdict                *)
(* ------------------------------------------------------------------ *)

let test_corruption_surfaces_cert_invalid =
  fi (fun () ->
      let cfg = Versions.fixed Versions.v3_0 in
      let zone = Spec.Fixtures.figure11_zone in
      let v1 = Pipeline.verify ~qtypes:[ Rr.A ] ~check_layers:false cfg zone in
      check_bool "baseline proved" true (Pipeline.clean v1);
      Faultinject.arm ~persistent:true ~after:1 Faultinject.Cache_corrupt;
      let v2 = Pipeline.verify ~qtypes:[ Rr.A ] ~check_layers:false cfg zone in
      (match Pipeline.status v2 with
      | Budget.Inconclusive (Budget.Cert_invalid _) -> ()
      | Budget.Inconclusive r ->
          Alcotest.failf "expected cert-invalid, got %s" (Budget.reason_tag r)
      | Budget.Proved -> Alcotest.fail "corrupted cache passed as proved"
      | Budget.Refuted _ ->
          Alcotest.fail "corrupted cache flipped a proof into a refutation");
      check_bool "cert failures counted" true (Pipeline.cert_failures v2 > 0))

(* ------------------------------------------------------------------ *)
(* Journal framing and recovery                                       *)
(* ------------------------------------------------------------------ *)

let with_temp f =
  let path = Filename.temp_file "dnsv-test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_crc32_vector () =
  (* The standard IEEE 802.3 check value. *)
  check_string "crc32(123456789)" "cbf43926"
    (Printf.sprintf "%08lx" (Journal.crc32 "123456789"))

let test_journal_roundtrip () =
  with_temp (fun path ->
      let j = Journal.create ~path ~header:"hdr v1" in
      Journal.append j "first";
      Journal.append j "second\nwith\nnewlines";
      Journal.append j "";
      Journal.finalize j "done";
      Journal.close j;
      let r = Journal.recover ~path in
      check_bool "header" true (r.Journal.header = Some "hdr v1");
      check_bool "records" true
        (r.Journal.records = [ "first"; "second\nwith\nnewlines"; "" ]);
      check_bool "final" true (r.Journal.final = Some "done");
      check_int "no torn bytes" 0 r.Journal.dropped_bytes)

let test_journal_torn_tail_truncated () =
  with_temp (fun path ->
      let j = Journal.create ~path ~header:"hdr" in
      Journal.append j "keep";
      Journal.close j;
      (* Simulate a kill mid-append: half a frame at the tail. *)
      let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
      output_string oc "DJ01\x00\x00\x00\xffgarb";
      close_out oc;
      let r = Journal.recover ~path in
      check_bool "intact records salvaged" true (r.Journal.records = [ "keep" ]);
      check_bool "torn bytes reported" true (r.Journal.dropped_bytes > 0);
      (* Resume truncates the tail and appends cleanly after it. *)
      (match Journal.open_resume ~path ~header:"hdr" with
      | Error e -> Alcotest.failf "resume failed: %s" e
      | Ok (j2, r2) ->
          check_bool "resume salvage" true (r2.Journal.records = [ "keep" ]);
          Journal.append j2 "appended";
          Journal.close j2);
      let r3 = Journal.recover ~path in
      check_bool "clean after truncation" true
        (r3.Journal.records = [ "keep"; "appended" ] && r3.Journal.dropped_bytes = 0))

let test_journal_header_mismatch () =
  with_temp (fun path ->
      let j = Journal.create ~path ~header:"workload A" in
      Journal.close j;
      match Journal.open_resume ~path ~header:"workload B" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "mismatched header must not resume")

let test_journal_corrupt_payload_dropped () =
  with_temp (fun path ->
      let j = Journal.create ~path ~header:"hdr" in
      Journal.append j "good";
      Journal.append j "tampered";
      Journal.close j;
      (* Flip one payload byte of the last record: its CRC no longer
         matches, so recovery must stop before it. *)
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string data in
      Bytes.set b (Bytes.length b - 1) 'X';
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let r = Journal.recover ~path in
      check_bool "only the intact record survives" true
        (r.Journal.records = [ "good" ]);
      check_bool "corrupt frame dropped" true (r.Journal.dropped_bytes > 0))

(* ------------------------------------------------------------------ *)
(* Journaled batch runs: kill, resume, byte-identical transcript      *)
(* ------------------------------------------------------------------ *)

let batch_cfg = Versions.fixed Versions.v3_0
let batch_origin = Name.of_string_exn "journal.example"

let run_batch ?journal ?resume ?count () =
  let count = match count with Some c -> c | None -> 3 in
  Pipeline.verify_batch_run ~qtypes:[ Rr.A ] ~count ~seed:5 ?journal ?resume
    batch_cfg batch_origin

let test_batch_killed_and_resumed =
  fi (fun () ->
      let reference = run_batch () in
      (match reference.Pipeline.br_outcome with
      | Some (Pipeline.All_clean 3) -> ()
      | _ -> Alcotest.fail "reference batch must be all-clean");
      with_temp (fun path ->
          (* Tear the second item record: arrival 1 is the header,
             2 and 3 the first two items. *)
          Faultinject.arm ~after:3 Faultinject.Journal_torn;
          (match run_batch ~journal:path () with
          | _ -> Alcotest.fail "torn append must kill the run"
          | exception Faultinject.Injected _ -> ());
          Faultinject.reset ();
          let resumed = run_batch ~journal:path ~resume:true () in
          check_string "resumed transcript = uninterrupted transcript"
            reference.Pipeline.br_fingerprint resumed.Pipeline.br_fingerprint;
          check_int "one zone replayed from the journal" 1
            resumed.Pipeline.br_resumed_items;
          check_bool "torn tail truncated" true
            (resumed.Pipeline.br_dropped_bytes > 0);
          (* The journal is finalized now: replaying re-runs nothing. *)
          let replay = run_batch ~journal:path ~resume:true () in
          check_string "finalized replay transcript"
            reference.Pipeline.br_fingerprint replay.Pipeline.br_fingerprint;
          check_bool "everything replayed" true
            (List.for_all
               (fun (it : Pipeline.batch_item) -> it.Pipeline.bi_resumed)
               replay.Pipeline.br_items);
          (match replay.Pipeline.br_outcome with
          | Some (Pipeline.All_clean 3) -> ()
          | _ -> Alcotest.fail "finalized replay outcome");
          (* A different workload must not resume into this journal. *)
          match run_batch ~journal:path ~resume:true ~count:4 () with
          | _ -> Alcotest.fail "workload mismatch must be rejected"
          | exception Failure _ -> ()))

(* ------------------------------------------------------------------ *)
(* Chaos harness smoke                                                *)
(* ------------------------------------------------------------------ *)

let test_chaos_smoke =
  fi (fun () ->
      let o = Dnsv.Chaos.run ~seed:11 ~plans:6 () in
      check_bool "no soundness violations" true (Dnsv.Chaos.ok o);
      check_int "all plans ran" 6 o.Dnsv.Chaos.plans;
      check_bool "plans actually fired faults" true (o.Dnsv.Chaos.fired > 0))

let test_plan_sampler_deterministic () =
  for seed = 0 to 50 do
    let p1 = Dnsv.Chaos.plan_of_seed seed in
    let p2 = Dnsv.Chaos.plan_of_seed seed in
    check_bool "same seed, same plan" true (p1 = p2);
    check_bool "1-2 sites" true
      (List.length p1.Dnsv.Chaos.sites >= 1
      && List.length p1.Dnsv.Chaos.sites <= 2);
    check_bool "positive firing index" true (p1.Dnsv.Chaos.after >= 1)
  done

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cert"
    [
      ( "checker",
        [
          Alcotest.test_case "solver certificates validate" `Quick
            test_solver_certificates_validate;
          Alcotest.test_case "bogus certificates rejected" `Quick
            test_checker_rejects_bogus_certificates;
        ] );
      ( "caching",
        [
          Alcotest.test_case "corruption surfaces cert-invalid" `Quick
            test_corruption_surfaces_cert_invalid;
        ]
        @ qcheck
            [
              prop_cache_hit_equals_scratch;
              prop_unknown_never_cached;
              prop_corruption_always_caught;
            ] );
      ( "journal",
        [
          Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail truncated" `Quick
            test_journal_torn_tail_truncated;
          Alcotest.test_case "header mismatch rejected" `Quick
            test_journal_header_mismatch;
          Alcotest.test_case "corrupt payload dropped" `Quick
            test_journal_corrupt_payload_dropped;
        ] );
      ( "batch",
        [
          Alcotest.test_case "killed and resumed byte-identical" `Quick
            test_batch_killed_and_resumed;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "plan sampler deterministic" `Quick
            test_plan_sampler_deterministic;
          Alcotest.test_case "mini soak upholds the monotone" `Quick
            test_chaos_smoke;
        ] );
    ]
