(* Seeded wire-decoder fuzz battery (`make fuzz-wire` / the CI
   wire-fuzz job). Replays Wire.Selfcheck's deterministic case
   generator: random bytes, bit-flipped and truncated valid encodings,
   compression-pointer abuse, oversized counts, unknown codes,
   corrupted rdata and trailing garbage. Fails (exit 1) if any input
   raises out of [Wire.decode], the catch-all barrier fires, a valid
   message fails to round-trip, or a required guard class is never
   exercised — the executable proof that the decoder's panic guards
   are discharged by typed checks, not by luck.

   Usage: fuzz_wire.exe [cases] [seed]. Defaults: 5000 cases, seed
   0xD15. A failure is replayable by quoting the same pair. *)

let () =
  let cases =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5000
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 0xD15
  in
  Printf.printf "fuzz-wire: %d cases, seed %d\n%!" cases seed;
  let report = Wire.Selfcheck.run ~seed ~cases () in
  Format.printf "%a@." Wire.Selfcheck.pp report;
  if Wire.Selfcheck.ok report then print_endline "fuzz-wire: OK"
  else begin
    print_endline "fuzz-wire: FAILED";
    exit 1
  end
