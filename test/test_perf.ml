(* Tests for the performance architecture of this PR: hash-consed
   terms, the solver result cache + incremental assertion stack, and
   the parallel verification pipeline.

   The load-bearing properties:

   - hash-consing is invisible: terms built through the raw data
     constructors and through the interning smart constructors evaluate
     identically on every bounded environment, and [hashcons] maps
     structurally equal terms to physically equal ones;
   - the incremental assertion stack answers exactly like a monolithic
     [Solver.check] of the same conjunction, on random push/assert/pop
     traces and on random fork/backtrack path-condition walks;
   - the parallel pipeline is invisible: [verify ~jobs:4] produces a
     verdict fingerprint byte-identical to [verify ~jobs:1] for every
     fixed engine version, and two parallel runs under the same armed
     fault plan agree with each other. *)

open Smt

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                       *)
(* ------------------------------------------------------------------ *)

let x = Term.int_var "x"
let y = Term.int_var "y"
let z = Term.int_var "z"

(* A recipe for a random boolean term, realized twice: once through the
   raw data constructors (no interning, no normalization) and once
   through the smart constructors (interned, lightly normalized). *)
let paired_gen : (Term.t * Term.t) QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> (Term.Int_const n, Term.int n)) (int_range (-4) 4);
        oneofl [ (x, x); (y, y); (z, z) ];
      ]
  in
  let arith =
    oneof
      [
        leaf;
        map2
          (fun (ra, sa) (rb, sb) -> (Term.Add [ ra; rb ], Term.add [ sa; sb ]))
          leaf leaf;
        map2
          (fun (ra, sa) (rb, sb) -> (Term.Sub (ra, rb), Term.sub sa sb))
          leaf leaf;
        map
          (fun (ra, sa) -> (Term.Mul_const (3, ra), Term.mul_const 3 sa))
          leaf;
        map (fun (ra, sa) -> (Term.Neg ra, Term.neg sa)) leaf;
      ]
  in
  let cmp =
    oneof
      [
        map2
          (fun (ra, sa) (rb, sb) -> (Term.Eq (ra, rb), Term.eq sa sb))
          arith arith;
        map2
          (fun (ra, sa) (rb, sb) -> (Term.Le (ra, rb), Term.le sa sb))
          arith arith;
        map2
          (fun (ra, sa) (rb, sb) -> (Term.Lt (ra, rb), Term.lt sa sb))
          arith arith;
      ]
  in
  fix
    (fun self n ->
      if n = 0 then cmp
      else
        frequency
          [
            (3, cmp);
            ( 2,
              map2
                (fun (ra, sa) (rb, sb) ->
                  (Term.And [ ra; rb ], Term.and_ [ sa; sb ]))
                (self (n / 2))
                (self (n / 2)) );
            ( 2,
              map2
                (fun (ra, sa) (rb, sb) ->
                  (Term.Or [ ra; rb ], Term.or_ [ sa; sb ]))
                (self (n / 2))
                (self (n / 2)) );
            (1, map (fun (ra, sa) -> (Term.Not ra, Term.not_ sa)) (self (n - 1)));
            ( 1,
              map2
                (fun (ra, sa) (rb, sb) ->
                  (Term.Implies (ra, rb), Term.implies sa sb))
                (self (n / 2))
                (self (n / 2)) );
          ])
    3

let arb_paired =
  QCheck.make
    ~print:(fun (r, s) -> Term.to_string r ^ " / " ^ Term.to_string s)
    paired_gen

let every_env f =
  let dom = [ -3; -1; 0; 2 ] in
  List.for_all
    (fun xv ->
      List.for_all
        (fun yv ->
          List.for_all
            (fun zv ->
              f (function
                | "x" -> Some (Term.VInt xv)
                | "y" -> Some (Term.VInt yv)
                | "z" -> Some (Term.VInt zv)
                | _ -> None))
            dom)
        dom)
    dom

let prop_smart_constructors_preserve_semantics =
  QCheck.Test.make
    ~name:"interning smart constructors preserve evaluation" ~count:300
    arb_paired
    (fun (raw, smart) ->
      every_env (fun env -> Term.eval_bool env raw = Term.eval_bool env smart))

let prop_hashcons_physical_equality =
  QCheck.Test.make
    ~name:"hashcons: structurally equal terms become physically equal"
    ~count:300 arb_paired
    (fun (raw, _) ->
      (* A deep raw copy shares no nodes with [raw]'s interned image,
         yet hash-consing both yields the same pointer. *)
      let a = Term.hashcons raw in
      let b = Term.hashcons raw in
      a == b && Term.equal a raw && Term.hash a = Term.hash raw)

let prop_smart_terms_already_interned =
  QCheck.Test.make ~name:"smart-built terms are fixpoints of hashcons"
    ~count:300 arb_paired
    (fun (_, smart) -> Term.hashcons smart == smart)

(* ------------------------------------------------------------------ *)
(* Incremental stack vs. monolithic check                             *)
(* ------------------------------------------------------------------ *)

let lit_gen : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof [ map Term.int (int_range (-4) 4); oneofl [ x; y; z ] ]
  in
  let arith =
    oneof [ leaf; map2 (fun a b -> Term.add [ a; b ]) leaf leaf ]
  in
  let cmp =
    oneof
      [
        map2 Term.eq arith arith;
        map2 Term.le arith arith;
        map2 Term.lt arith arith;
      ]
  in
  oneof [ cmp; map Term.not_ cmp ]

type trace_op = Push | Pop | Assert of Term.t

let trace_gen : trace_op list QCheck.Gen.t =
  let open QCheck.Gen in
  let op =
    frequency
      [ (2, return Push); (1, return Pop); (4, map (fun l -> Assert l) lit_gen) ]
  in
  list_size (int_range 1 14) op

let arb_trace =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Push -> "push"
             | Pop -> "pop"
             | Assert l -> "assert " ^ Term.to_string l)
           ops))
    trace_gen

let same_verdict (a : Solver.result) (b : Solver.result) =
  match (a, b) with
  | Solver.Sat _, Solver.Sat _ -> true
  | Solver.Unsat, Solver.Unsat -> true
  | Solver.Unknown, Solver.Unknown -> true
  | _ -> false

let prop_incremental_matches_monolithic =
  QCheck.Test.make
    ~name:"incremental stack agrees with monolithic check on traces"
    ~count:200 arb_trace
    (fun ops ->
      let s = Solver.Incremental.create () in
      List.for_all
        (fun op ->
          (match op with
          | Push -> Solver.Incremental.push s
          | Pop -> if Solver.Incremental.depth s > 0 then Solver.Incremental.pop s
          | Assert l -> Solver.Incremental.assert_term s l);
          same_verdict
            (Solver.Incremental.check s)
            (Solver.check (Solver.Incremental.terms s)))
        ops)

(* Random fork/backtrack walk over path conditions, the shape the
   symbolic executor produces: extend the current pc by consing, or
   backtrack to any previously seen pc (sharing its tail physically). *)
let prop_check_pc_matches_monolithic =
  QCheck.Test.make
    ~name:"check_pc agrees with monolithic check on fork/backtrack walks"
    ~count:100
    (QCheck.make
       ~print:(fun ls -> String.concat "; " (List.map Term.to_string ls))
       QCheck.Gen.(list_size (int_range 1 12) lit_gen))
    (fun lits ->
      let s = Solver.Incremental.create () in
      let seen = ref [ [] ] in
      let pc = ref [] in
      List.for_all
        (fun lit ->
          (* Every other step, backtrack to a pseudo-random saved pc
             first (deterministic in the generated literals). *)
          (match !seen with
          | choices when Term.hash lit mod 3 = 0 ->
              pc := List.nth choices (Term.hash lit mod List.length choices)
          | _ -> ());
          pc := lit :: !pc;
          seen := !pc :: !seen;
          same_verdict
            (Solver.Incremental.check_pc s !pc)
            (Solver.check !pc))
        lits)

(* The stack must stay correct with the optimization switched off (the
   benchmark's seed-equivalent mode falls back to monolithic checks). *)
let test_incremental_switch () =
  let s = Solver.Incremental.create () in
  let pc = [ Term.le x (Term.int 3); Term.le (Term.int 1) x ] in
  Solver.set_incremental false;
  let off = Solver.Incremental.check_pc s pc in
  Solver.set_incremental true;
  let on_ = Solver.Incremental.check_pc s pc in
  check_bool "verdicts agree across the incremental switch" true
    (same_verdict off on_);
  Solver.set_caching false;
  let uncached = Solver.Incremental.check_pc s pc in
  Solver.set_caching true;
  check_bool "verdicts agree across the caching switch" true
    (same_verdict uncached on_)

(* ------------------------------------------------------------------ *)
(* Result cache                                                       *)
(* ------------------------------------------------------------------ *)

let prop_cached_verdicts_stable =
  QCheck.Test.make ~name:"re-checking a conjunction hits the cache, same model"
    ~count:200 arb_paired
    (fun (_, smart) ->
      QCheck.assume (Term.is_bool smart);
      let first = Solver.check [ smart ] in
      let second = Solver.check [ smart ] in
      match (first, second) with
      | Solver.Sat m1, Solver.Sat m2 ->
          (* Cached models are a function of the conjunction alone. *)
          Model.satisfies m1 smart && Model.satisfies m2 smart
      | a, b -> same_verdict a b)

(* ------------------------------------------------------------------ *)
(* Parallel pipeline determinism                                      *)
(* ------------------------------------------------------------------ *)

let qtypes = [ Dns.Rr.A; Dns.Rr.MX ]

let test_parallel_verify_matches_sequential () =
  let zone = Spec.Fixtures.reference_zone in
  List.iter
    (fun cfg ->
      let cfg = Engine.Versions.fixed cfg in
      let run jobs =
        Dnsv.Pipeline.verify ~qtypes ~check_layers:false
          ~budget:(Budget.create ()) ~jobs cfg zone
        |> Dnsv.Pipeline.fingerprint
      in
      check_string
        (cfg.Engine.Builder.version ^ ": jobs=4 fingerprint equals jobs=1")
        (run 1) (run 4))
    Engine.Versions.all

let test_parallel_batch_matches_sequential () =
  let cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let origin = Dns.Name.of_string_exn "batch.example" in
  let run jobs =
    Dnsv.Pipeline.verify_batch ~qtypes:[ Dns.Rr.A ] ~count:3 ~seed:7
      ~budget:(Budget.create ()) ~jobs cfg origin
    |> Dnsv.Pipeline.fingerprint_batch
  in
  check_string "verify_batch jobs=2 equals jobs=1" (run 1) (run 2)

(* Two parallel runs under the same armed fault plan must agree: worker
   domains inherit the plan with fresh arrival counters, so the fault
   schedule is a deterministic function of (tasks, jobs). *)
let test_parallel_fault_determinism () =
  let zone = Spec.Fixtures.reference_zone in
  let cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
  let run () =
    Faultinject.reset ();
    Faultinject.arm ~persistent:true ~after:50 Faultinject.Solver_unknown;
    let v =
      Dnsv.Pipeline.verify ~qtypes ~check_layers:false
        ~budget:(Budget.create ()) ~jobs:4 cfg zone
    in
    Faultinject.reset ();
    Dnsv.Pipeline.fingerprint v
  in
  let first = run () in
  let second = run () in
  check_string "fault-injected parallel runs are replayable" first second;
  check_bool "the armed fault actually degraded the verdict" true
    (String.length first > 0)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "perf"
    [
      ( "hashcons",
        qcheck
          [
            prop_smart_constructors_preserve_semantics;
            prop_hashcons_physical_equality;
            prop_smart_terms_already_interned;
          ] );
      ( "incremental",
        qcheck
          [ prop_incremental_matches_monolithic; prop_check_pc_matches_monolithic ]
        @ [
            Alcotest.test_case "switches preserve verdicts" `Quick
              test_incremental_switch;
          ] );
      ("cache", qcheck [ prop_cached_verdicts_stable ]);
      ( "parallel",
        [
          Alcotest.test_case "verify: jobs=4 fingerprints equal jobs=1" `Quick
            test_parallel_verify_matches_sequential;
          Alcotest.test_case "verify_batch: jobs=2 fingerprints equal jobs=1"
            `Quick test_parallel_batch_matches_sequential;
          Alcotest.test_case "fault-injected parallel runs replayable" `Quick
            test_parallel_fault_determinism;
        ] );
    ]
