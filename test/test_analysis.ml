(* Static-analysis tests.

   The load-bearing properties:

   - Soundness: every concrete interpreter run stays inside the abstract
     states — at each block entry the live frame and memory are members
     of the analysis' computed in-state (γ-membership), over random
     inputs and programs exercising loops, arrays, pointers and
     branches.
   - Prune invariance: verification fingerprints are byte-identical
     with the analysis off, trusted, and distrusted, over engine
     versions and under seeded fault plans — the analysis accelerates
     the pipeline, it never changes what is proved.
   - Discharge rate: a meaningful fraction of panic-guard branches is
     discharged statically (the ≥20%% acceptance floor, with margin).
   - Lint determinism, including independence from parallel verify runs
     that warm the domain-local memos.
   - Wellform rejects straight-line use-before-assignment. *)

module Instr = Minir.Instr
module Interp = Minir.Interp
module Value = Minir.Value
module Ty = Minir.Ty

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let qcheck = List.map QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Interval algebra                                                   *)
(* ------------------------------------------------------------------ *)

let interval_gen =
  (* Bot, points, finite ranges, and half-open ranges. *)
  QCheck.Gen.(
    let pt = map Analysis.Interval.of_int (int_range (-20) 20) in
    let range =
      map2
        (fun a b -> Analysis.Interval.I (Some (min a b), Some (max a b)))
        (int_range (-20) 20) (int_range (-20) 20)
    in
    let half =
      map2
        (fun a hi ->
          if hi then Analysis.Interval.I (None, Some a)
          else Analysis.Interval.I (Some a, None))
        (int_range (-20) 20) bool
    in
    frequency
      [
        (1, return Analysis.Interval.Bot);
        (1, return Analysis.Interval.top);
        (3, pt);
        (4, range);
        (2, half);
      ])

let interval_arb = QCheck.make interval_gen

let prop_interval_join_sound =
  QCheck.Test.make ~name:"interval: join is an upper bound" ~count:500
    (QCheck.triple interval_arb interval_arb (QCheck.int_range (-25) 25))
    (fun (i, j, n) ->
      let open Analysis.Interval in
      QCheck.assume (mem n i || mem n j);
      mem n (join i j))

let prop_interval_meet_sound =
  QCheck.Test.make ~name:"interval: meet is the intersection" ~count:500
    (QCheck.triple interval_arb interval_arb (QCheck.int_range (-25) 25))
    (fun (i, j, n) ->
      let open Analysis.Interval in
      mem n (meet i j) = (mem n i && mem n j))

let prop_interval_widen_sound =
  QCheck.Test.make ~name:"interval: widen covers the join" ~count:500
    (QCheck.triple interval_arb interval_arb (QCheck.int_range (-25) 25))
    (fun (i, j, n) ->
      let open Analysis.Interval in
      QCheck.assume (mem n i || mem n j);
      mem n (widen i (join i j)))

(* ------------------------------------------------------------------ *)
(* Soundness: concrete runs stay inside the abstract states           *)
(* ------------------------------------------------------------------ *)

(* Small Golite programs covering the domains: interval loops, array
   bounds checks, pointer nullness, definite initialization. Each takes
   two int arguments. *)
let soundness_sources =
  [
    ( "loops",
      "func main(n int, m int) int {\n\
      \  var t int = m\n\
      \  var i int = 0\n\
      \  while i < n {\n\
      \    t = t + i\n\
      \    if t > 100 {\n\
      \      t = 0\n\
      \    }\n\
      \    i = i + 1\n\
      \  }\n\
      \  return t\n\
       }\n" );
    ( "arrays",
      "func main(n int, m int) int {\n\
      \  var xs [4]int\n\
      \  var i int = 0\n\
      \  while i < 4 {\n\
      \    xs[i] = m + i\n\
      \    i = i + 1\n\
      \  }\n\
      \  if n >= 0 {\n\
      \    if n < 4 {\n\
      \      return xs[n]\n\
      \    }\n\
      \  }\n\
      \  return 0\n\
       }\n" );
    ( "pointers",
      "struct P {\n\
      \  x int\n\
      \  y int\n\
       }\n\n\
       func main(n int, m int) int {\n\
      \  var p *P = new(P)\n\
      \  p.x = n\n\
      \  if m > 0 {\n\
      \    p.y = m\n\
      \  }\n\
      \  return p.x + p.y\n\
       }\n" );
    ( "branches",
      "func main(n int, m int) int {\n\
      \  var a int = 0\n\
      \  if n < m {\n\
      \    a = m - n\n\
      \  } else {\n\
      \    a = n - m\n\
      \  }\n\
      \  if a > 0 {\n\
      \    return a\n\
      \  }\n\
      \  return 0 - a\n\
       }\n" );
  ]

let soundness_progs =
  lazy
    (List.map
       (fun (name, src) ->
         ( name,
           Golite.Compile.compile (Golite.Parse.program_of_string_exn src) ))
       soundness_sources)

let prop_concrete_inside_abstract =
  QCheck.Test.make ~name:"soundness: concrete runs inside abstract states"
    ~count:100
    (QCheck.pair (QCheck.int_range (-8) 8) (QCheck.int_range (-8) 8))
    (fun (n, m) ->
      List.for_all
        (fun (name, prog) ->
          let summary = Analysis.analyze prog in
          let failures = ref [] in
          let observer fn label frame mem =
            (if not (Analysis.reachable summary ~fn ~label) then
               failures :=
                 Printf.sprintf "%s: reached %s/%s proved unreachable" name fn
                   label
                 :: !failures);
            match Analysis.in_state summary ~fn ~label with
            | None ->
                failures :=
                  Printf.sprintf "%s: no state for %s/%s" name fn label
                  :: !failures
            | Some st -> (
                let lookup r = Hashtbl.find_opt frame r in
                let load p =
                  match Value.load mem p with
                  | v -> Some v
                  | exception _ -> None
                in
                match Analysis.check_concrete st ~lookup ~load with
                | Ok () -> ()
                | Error msg ->
                    failures :=
                      Printf.sprintf "%s: %s/%s: %s" name fn label msg
                      :: !failures)
          in
          (match
             Interp.run ~observer prog ~memory:Value.empty_memory ~fn:"main"
               ~args:[ Value.VInt n; Value.VInt m ]
           with
          | Interp.Returned _ | Interp.Panicked _ -> ()
          | exception Interp.Out_of_fuel -> ());
          match !failures with
          | [] -> true
          | msgs -> QCheck.Test.fail_report (String.concat "\n" msgs))
        (Lazy.force soundness_progs))

(* Interprocedural soundness: multi-function programs where the facts
   at block entries depend on call summaries being applied at call
   sites (including a mutually-recursive SCC, where the summaries are
   a widened fixpoint). The observer fires in every function, so a
   summary that over-narrows any callee or caller fails the γ-check. *)
let call_soundness_sources =
  [
    ( "chain",
      "func leaf(x int) int {\n\
      \  if x < 0 {\n\
      \    return 0 - x\n\
      \  }\n\
      \  return x\n\
       }\n\n\
       func mid(a int, b int) int {\n\
      \  var s int = leaf(a) + leaf(b)\n\
      \  if s < 0 {\n\
      \    panic(\"negative sum of absolutes\")\n\
      \  }\n\
      \  return s\n\
       }\n\n\
       func main(n int, m int) int {\n\
      \  return mid(n, m) + leaf(n - m)\n\
       }\n" );
    ( "cycle",
      "func isEven(n int) bool {\n\
      \  if n == 0 {\n\
      \    return true\n\
      \  }\n\
      \  return isOdd(n - 1)\n\
       }\n\n\
       func isOdd(n int) bool {\n\
      \  if n == 0 {\n\
      \    return false\n\
      \  }\n\
      \  return isEven(n - 1)\n\
       }\n\n\
       func main(n int, m int) int {\n\
      \  var k int = n\n\
      \  if k < 0 {\n\
      \    k = 0 - k\n\
      \  }\n\
      \  if isEven(k) {\n\
      \    return m\n\
      \  }\n\
      \  return m + 1\n\
       }\n" );
  ]

let call_soundness_progs =
  lazy
    (List.map
       (fun (name, src) ->
         ( name,
           Golite.Compile.compile (Golite.Parse.program_of_string_exn src) ))
       call_soundness_sources)

let prop_concrete_inside_abstract_calls =
  QCheck.Test.make
    ~name:"soundness: concrete runs inside abstract states across calls"
    ~count:60
    (QCheck.pair (QCheck.int_range (-8) 8) (QCheck.int_range (-8) 8))
    (fun (n, m) ->
      List.for_all
        (fun (name, prog) ->
          let summary = Analysis.analyze prog in
          let failures = ref [] in
          let observer fn label frame mem =
            (if not (Analysis.reachable summary ~fn ~label) then
               failures :=
                 Printf.sprintf "%s: reached %s/%s proved unreachable" name fn
                   label
                 :: !failures);
            match Analysis.in_state summary ~fn ~label with
            | None ->
                failures :=
                  Printf.sprintf "%s: no state for %s/%s" name fn label
                  :: !failures
            | Some st -> (
                let lookup r = Hashtbl.find_opt frame r in
                let load p =
                  match Value.load mem p with
                  | v -> Some v
                  | exception _ -> None
                in
                match Analysis.check_concrete st ~lookup ~load with
                | Ok () -> ()
                | Error msg ->
                    failures :=
                      Printf.sprintf "%s: %s/%s: %s" name fn label msg
                      :: !failures)
          in
          (match
             Interp.run ~observer prog ~memory:Value.empty_memory ~fn:"main"
               ~args:[ Value.VInt n; Value.VInt m ]
           with
          | Interp.Returned _ | Interp.Panicked _ -> ()
          | exception Interp.Out_of_fuel -> ());
          match !failures with
          | [] -> true
          | msgs -> QCheck.Test.fail_report (String.concat "\n" msgs))
        (Lazy.force call_soundness_progs))

(* The widened fixpoint of a recursive SCC must cover every concrete
   return: [count] returns exactly its (clamped) argument, so any
   sound summary admits 0..10, claims purity, and cannot prove a panic
   away (there is none to prove). *)
let test_scc_fixpoint_sound () =
  let src =
    "func count(n int) int {\n\
    \  if n <= 0 {\n\
    \    return 0\n\
    \  }\n\
    \  return count(n - 1) + 1\n\
     }\n\n\
     func main(n int) int {\n\
    \  return count(n)\n\
     }\n"
  in
  let prog = Golite.Compile.compile (Golite.Parse.program_of_string_exn src) in
  let summary = Analysis.analyze prog in
  match Analysis.rsummary_of summary "count" with
  | None -> Alcotest.fail "no summary for count"
  | Some rs ->
      check_bool "count returns" true rs.Analysis.rs_returns;
      check_bool "count is pure" true rs.Analysis.rs_pure;
      (match rs.Analysis.rs_ret with
      | Analysis.AInt itv ->
          for k = 0 to 10 do
            check_bool
              (Printf.sprintf "concrete count(%d) = %d inside rs_ret" k k)
              true
              (Analysis.Interval.mem k itv)
          done
      | _ -> Alcotest.fail "count summary has no integer return");
      (* And the cycle twin: the mutual recursion from the QCheck
         sources converges to a summary that still admits both
         booleans (a sound fixpoint cannot pin a parity). *)
      let cycle = List.assoc "cycle" (Lazy.force call_soundness_progs) in
      let s2 = Analysis.analyze cycle in
      List.iter
        (fun fn ->
          match Analysis.rsummary_of s2 fn with
          | Some rs ->
              check_bool (fn ^ " returns") true rs.Analysis.rs_returns;
              check_bool
                (fn ^ " cannot pin parity")
                true
                (match rs.Analysis.rs_ret with
                | Analysis.ABool Analysis.Tribool.TTop | Analysis.ATop -> true
                | _ -> false)
          | None -> Alcotest.fail ("no summary for " ^ fn))
        [ "isEven"; "isOdd" ]

(* The engine versions themselves: the abstract states must admit the
   concrete frames the real resolver produces on a reference query. *)
let test_soundness_engine () =
  List.iter
    (fun cfg ->
      let prog = Engine.Versions.compiled cfg in
      let summary = Analysis.summarize prog in
      let violations = ref 0 and observed = ref 0 in
      let observer fn label frame mem =
        incr observed;
        match Analysis.in_state summary ~fn ~label with
        | None -> incr violations
        | Some st -> (
            let lookup r = Hashtbl.find_opt frame r in
            let load p =
              match Value.load mem p with v -> Some v | exception _ -> None
            in
            match Analysis.check_concrete st ~lookup ~load with
            | Ok () -> ()
            | Error msg ->
                incr violations;
                Printf.eprintf "%s: %s/%s: %s\n" cfg.Engine.Builder.version fn
                  label msg)
      in
      let zone = Spec.Fixtures.reference_zone in
      let q = Dns.Message.query (Dns.Name.of_string_exn "www.example.com") Dns.Rr.A in
      (match Engine.Versions.run ~observer cfg zone q with
      | Engine.Versions.Response _ | Engine.Versions.Engine_panic _ -> ());
      check_bool
        (cfg.Engine.Builder.version ^ ": block entries observed")
        true (!observed > 0);
      check_int (cfg.Engine.Builder.version ^ ": soundness violations") 0
        !violations)
    Engine.Versions.all

(* ------------------------------------------------------------------ *)
(* Prune invariance                                                   *)
(* ------------------------------------------------------------------ *)

let qtypes = [ Dns.Rr.A; Dns.Rr.MX ]

let scrub () =
  Faultinject.reset ();
  Smt.Solver.clear_caches ();
  Dnsv.Pipeline.clear_summary_memo ();
  Analysis.clear_memo ()

let test_prune_invariance_versions () =
  let zone = Spec.Fixtures.reference_zone in
  List.iter
    (fun cfg ->
      let run analysis =
        scrub ();
        Dnsv.Pipeline.verify ~qtypes ~check_layers:false
          ~budget:(Budget.create ()) ~analysis cfg zone
        |> Dnsv.Pipeline.fingerprint
      in
      let off = run Analysis.Off in
      check_string
        (cfg.Engine.Builder.version ^ ": trust = off")
        off (run Analysis.Trust);
      check_string
        (cfg.Engine.Builder.version ^ ": distrust = off")
        off (run Analysis.Distrust))
    (* v1.0 refutes on the reference zone, its fixed twin proves: the
       invariance covers both verdict shapes. *)
    [ Engine.Versions.v1_0; Engine.Versions.fixed Engine.Versions.v1_0 ]

(* Under seeded fault plans the comparison arm is Distrust (same solver
   call sequence as Off, so the same plan lands on the same calls); a
   fault may degrade the verdict, but identically in both arms. *)
let test_prune_invariance_fault_seeds () =
  let zone = Spec.Fixtures.reference_zone in
  let cfg = Engine.Versions.fixed Engine.Versions.v1_0 in
  for seed = 1 to 6 do
    let run analysis =
      scrub ();
      Dnsv.Chaos.arm_plan (Dnsv.Chaos.plan_of_seed seed);
      match
        Dnsv.Pipeline.verify ~qtypes ~check_layers:false
          ~budget:(Budget.create ()) ~analysis cfg zone
      with
      | v -> Dnsv.Pipeline.fingerprint v
      | exception Faultinject.Injected site -> "injected:" ^ site
    in
    let off = run Analysis.Off in
    check_string
      (Printf.sprintf "fault seed %d: distrust = off" seed)
      off (run Analysis.Distrust)
  done;
  scrub ()

(* ------------------------------------------------------------------ *)
(* Discharge rate and cross-check cleanliness                         *)
(* ------------------------------------------------------------------ *)

let test_discharge_rate () =
  scrub ();
  let m0 = Trace.Metrics.snapshot () in
  let zone = Spec.Fixtures.reference_zone in
  let cfg = Engine.Versions.fixed Engine.Versions.v1_0 in
  ignore
    (Dnsv.Pipeline.verify ~qtypes ~check_layers:false
       ~budget:(Budget.create ()) ~analysis:Analysis.Trust cfg zone);
  let d = Trace.Metrics.diff (Trace.Metrics.snapshot ()) m0 in
  let checks = Trace.Metrics.get d "analysis.panic_checks" in
  let discharged = Trace.Metrics.get d "analysis.panic_discharged" in
  check_bool "panic checks seen" true (checks > 0);
  (* The acceptance floor is 20%; the engines sit around 70%. *)
  check_bool
    (Printf.sprintf "discharge rate %d/%d >= 20%%" discharged checks)
    true
    (discharged * 5 >= checks);
  (* The interprocedural layer must carry some of those discharges:
     claims the plain intraprocedural facts could not make. *)
  check_bool "interprocedural discharges seen" true
    (Trace.Metrics.get d "analysis.ip_discharged" > 0)

let test_distrust_crosscheck_clean () =
  scrub ();
  let m0 = Trace.Metrics.snapshot () in
  let zone = Spec.Fixtures.reference_zone in
  let cfg = Engine.Versions.fixed Engine.Versions.v1_0 in
  ignore
    (Dnsv.Pipeline.verify ~qtypes:[ Dns.Rr.A ] ~check_layers:false
       ~budget:(Budget.create ()) ~analysis:Analysis.Distrust cfg zone);
  let d = Trace.Metrics.diff (Trace.Metrics.snapshot ()) m0 in
  check_bool "cross-checks performed" true
    (Trace.Metrics.get d "analysis.crosscheck_pass" > 0);
  check_int "cross-check mismatches" 0
    (Trace.Metrics.get d "analysis.crosscheck_mismatch");
  check_bool "interprocedural claims cross-checked" true
    (Trace.Metrics.get d "analysis.ip_crosscheck" > 0);
  check_int "interprocedural cross-check mismatches" 0
    (Trace.Metrics.get d "analysis.ip_crosscheck_mismatch")

(* ------------------------------------------------------------------ *)
(* Lint                                                               *)
(* ------------------------------------------------------------------ *)

let lint_json prog = Analysis.Lint.to_json (Analysis.Lint.run prog)

let test_lint_deterministic () =
  List.iter
    (fun cfg ->
      let prog = Engine.Versions.compiled cfg in
      check_string
        (cfg.Engine.Builder.version ^ ": lint is deterministic")
        (lint_json prog) (lint_json prog))
    Engine.Versions.all

let test_lint_engines_clean () =
  List.iter
    (fun cfg ->
      let findings = Analysis.Lint.run (Engine.Versions.compiled cfg) in
      check_int
        (cfg.Engine.Builder.version ^ ": no lint findings")
        0
        (List.length findings))
    Engine.Versions.all

(* Lint output is independent of parallel verify runs warming the
   domain-local memos (the `--jobs` independence gate). *)
let test_lint_jobs_independent () =
  let cfg = Engine.Versions.fixed Engine.Versions.v1_0 in
  let prog = Engine.Versions.compiled cfg in
  let before = lint_json prog in
  ignore
    (Dnsv.Pipeline.verify ~qtypes ~check_layers:false
       ~budget:(Budget.create ()) ~jobs:4 cfg Spec.Fixtures.reference_zone);
  check_string "lint unchanged after jobs=4 verify" before (lint_json prog)

(* The linter catches seeded bugs (the examples/lint_demo.ml program). *)
let test_lint_catches_seeded_bugs () =
  let src =
    "func sumFirst(xs [4]int) int {\n\
    \  var total int = 0\n\
    \  var i int = 0\n\
    \  while i <= 4 {\n\
    \    total = total + xs[i]\n\
    \    i = i + 1\n\
    \  }\n\
    \  return total\n\
     }\n\n\
     func scale(x int) int {\n\
    \  var tmp int = 0\n\
    \  if x > 0 {\n\
    \    tmp = x * 3\n\
    \  }\n\
    \  return x * 2\n\
     }\n"
  in
  let prog = Golite.Compile.compile (Golite.Parse.program_of_string_exn src) in
  let findings = Analysis.Lint.run prog in
  let has rule fn =
    List.exists
      (fun (f : Analysis.Lint.finding) ->
        f.Analysis.Lint.rule = rule && f.Analysis.Lint.fn = fn)
      findings
  in
  check_bool "off-by-one caught" true (has "reachable-panic" "sumFirst");
  check_bool "dead store caught" true (has "dead-store" "scale");
  check_int "exactly the seeded bugs" 2 (List.length findings)

(* ------------------------------------------------------------------ *)
(* Wellform: use before assignment                                    *)
(* ------------------------------------------------------------------ *)

let test_wellform_use_before_assignment () =
  (* %a is read by the instruction that precedes its definition in the
     same block: straight-line use-before-assignment. *)
  let f =
    {
      Instr.fn_name = "ubd";
      params = [];
      ret_ty = Some Ty.I64;
      entry = "entry";
      blocks =
        [
          ( "entry",
            {
              Instr.insns =
                [
                  Instr.Assign
                    ("b", Instr.Binop (Instr.Add, Instr.Reg "a", Instr.Const_int 1));
                  Instr.Assign ("a", Instr.Binop (Instr.Add, Instr.Const_int 2, Instr.Const_int 3));
                ];
              term = Instr.Ret (Some (Instr.Reg "b"));
            } );
        ];
    }
  in
  let p = { Instr.tenv = []; funcs = [ f ] } in
  (match Minir.Wellform.check p with
  | Minir.Wellform.Ok -> Alcotest.fail "use-before-assignment accepted"
  | Minir.Wellform.Errors _ -> ());
  (* The same instructions in definition order are well-formed. *)
  let ok =
    {
      f with
      Instr.blocks =
        [
          ( "entry",
            {
              Instr.insns =
                [
                  Instr.Assign ("a", Instr.Binop (Instr.Add, Instr.Const_int 2, Instr.Const_int 3));
                  Instr.Assign
                    ("b", Instr.Binop (Instr.Add, Instr.Reg "a", Instr.Const_int 1));
                ];
              term = Instr.Ret (Some (Instr.Reg "b"));
            } );
        ];
    }
  in
  match Minir.Wellform.check { Instr.tenv = []; funcs = [ ok ] } with
  | Minir.Wellform.Ok -> ()
  | Minir.Wellform.Errors es ->
      Alcotest.failf "in-order program rejected: %a" Minir.Wellform.pp_error
        (List.hd es)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "intervals",
        qcheck
          [
            prop_interval_join_sound;
            prop_interval_meet_sound;
            prop_interval_widen_sound;
          ] );
      ( "soundness",
        qcheck
          [ prop_concrete_inside_abstract; prop_concrete_inside_abstract_calls ]
        @ [
            Alcotest.test_case "SCC fixpoint is sound" `Quick
              test_scc_fixpoint_sound;
            Alcotest.test_case "engine run inside abstract states" `Quick
              test_soundness_engine;
          ] );
      ( "prune",
        [
          Alcotest.test_case "fingerprints equal off/trust/distrust" `Quick
            test_prune_invariance_versions;
          Alcotest.test_case "fingerprints equal under fault seeds" `Quick
            test_prune_invariance_fault_seeds;
          Alcotest.test_case "discharge rate >= 20%" `Quick
            test_discharge_rate;
          Alcotest.test_case "distrust cross-checks all pass" `Quick
            test_distrust_crosscheck_clean;
        ] );
      ( "lint",
        [
          Alcotest.test_case "deterministic" `Quick test_lint_deterministic;
          Alcotest.test_case "engines clean" `Quick test_lint_engines_clean;
          Alcotest.test_case "independent of jobs" `Quick
            test_lint_jobs_independent;
          Alcotest.test_case "catches seeded bugs" `Quick
            test_lint_catches_seeded_bugs;
        ] );
      ( "wellform",
        [
          Alcotest.test_case "use before assignment rejected" `Quick
            test_wellform_use_before_assignment;
        ] );
    ]
