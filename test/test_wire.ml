(* The RFC 1035 wire path: decoder totality on arbitrary bytes (QCheck
   never-raises + the seeded Selfcheck battery), encode/decode
   round-trips, the typed guard classes on crafted malformed inputs,
   TC truncation, and the serve loop's degradation contract — garbage
   gets FORMERR, unsupported opcodes NOTIMP, injected overload gets
   SERVFAIL with a machine-readable reason in the trace, responses are
   dropped, and a SIGKILLed server restarted on the same socket loses
   no settled queries. *)

module Message = Dns.Message
module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Serve = Dnsv.Serve
module Loadgen = Dnsv.Loadgen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let qcheck = List.map QCheck_alcotest.to_alcotest

let fi f =
  Faultinject.reset ();
  Fun.protect ~finally:Faultinject.reset f

(* ------------------------------------------------------------------ *)
(* Codec: round-trips and totality                                    *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"decode (encode m) = m, both compressions"
    QCheck.(pair small_nat small_nat)
    (fun (seed, i) ->
      let m = Wire.Selfcheck.message ~seed i in
      let rt compress =
        match Wire.decode (Wire.encode ~compress m) with
        | Ok m' -> Wire.equal m m'
        | Error _ -> false
      in
      rt true && rt false)

let prop_decode_total_random =
  QCheck.Test.make ~count:500 ~name:"decode never raises on arbitrary bytes"
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match Wire.decode s with Ok _ | Error _ -> true)

let prop_decode_total_mutated =
  QCheck.Test.make ~count:300
    ~name:"decode never raises or hits the barrier on mutated encodings"
    QCheck.(triple small_nat small_nat (list small_nat))
    (fun (seed, i, flips) ->
      let b = Bytes.of_string (Wire.encode (Wire.Selfcheck.message ~seed i)) in
      List.iter
        (fun f ->
          let at = f mod Bytes.length b in
          Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor (1 lsl (f mod 8)))))
        flips;
      match Wire.decode (Bytes.to_string b) with
      | Ok _ | Error (Wire.Internal _) -> true (* Internal checked below *)
      | Error _ -> true)

let test_barrier_never_hit () =
  (* After everything this file (and the properties above) decoded,
     the catch-all barrier must not have fired once: totality comes
     from the typed guards. *)
  check_int "wire.barrier hits" 0 (Wire.barrier_hits ())

let test_selfcheck_battery () =
  let r = Wire.Selfcheck.run ~seed:42 ~cases:1500 () in
  check_bool "selfcheck ok" true (Wire.Selfcheck.ok r);
  check_int "no raises" 0 r.Wire.Selfcheck.sc_raised;
  check_int "no barrier hits" 0 r.Wire.Selfcheck.sc_barrier;
  check_int "no round-trip failures" 0 r.Wire.Selfcheck.sc_roundtrip_failures;
  check_bool "every guard class exercised" true
    (r.Wire.Selfcheck.sc_missing_guards = []);
  check_bool "some inputs decoded" true (r.Wire.Selfcheck.sc_decoded > 0)

(* ------------------------------------------------------------------ *)
(* Codec: crafted guard cases                                         *)
(* ------------------------------------------------------------------ *)

let be16 v = String.init 2 (fun j -> Char.chr ((v lsr (8 * (1 - j))) land 0xFF))

let header ?(flags = 0) ?(an = 0) ~qd () =
  be16 0x1234 ^ be16 flags ^ be16 qd ^ be16 an ^ be16 0 ^ be16 0

let tag e = Wire.error_tag e

let expect_tag name want bytes =
  match Wire.decode bytes with
  | Ok _ -> Alcotest.failf "%s: decoded instead of %s" name want
  | Error e -> check_string name want (tag e)

let test_guards () =
  expect_tag "self pointer" "pointer" (header ~qd:1 () ^ "\xC0\x0C");
  expect_tag "forward pointer" "pointer" (header ~qd:1 () ^ "\xC0\xF0");
  expect_tag "reserved label tag" "bad-label" (header ~qd:1 () ^ "\x41a");
  expect_tag "truncated header" "truncated" "\x00\x01\x02";
  expect_tag "truncated label" "truncated" (header ~qd:1 () ^ "\x3Fab");
  expect_tag "count cap" "count-cap" (header ~qd:0xFFFF ());
  expect_tag "unknown rtype" "unsupported"
    (header ~qd:1 () ^ "\x01a\x00" ^ be16 250 ^ be16 1);
  expect_tag "unknown class" "unsupported"
    (header ~qd:1 () ^ "\x01a\x00" ^ be16 1 ^ be16 2);
  expect_tag "reserved rcode" "unsupported" (header ~flags:6 ~qd:0 ());
  expect_tag "trailing bytes" "trailing" (header ~qd:0 () ^ "xx");
  let long_label = String.make 1 (Char.chr 63) ^ String.make 63 'a' in
  expect_tag "name over 255 octets" "name-too-long"
    (header ~qd:1 ()
    ^ String.concat "" (List.init 5 (fun _ -> long_label))
    ^ "\x00" ^ be16 1 ^ be16 1);
  expect_tag "A rdata of 5 bytes" "bad-rdata"
    (header ~an:1 ~qd:0 () ^ "\x01a\x00" ^ be16 1 ^ be16 1 ^ be16 0 ^ be16 0
   ^ be16 5 ^ "abcde");
  expect_tag "AAAA with mixed sign prefix" "bad-rdata"
    (header ~an:1 ~qd:0 () ^ "\x01a\x00" ^ be16 28 ^ be16 1 ^ be16 0 ^ be16 0
   ^ be16 16 ^ "\x00\xFF" ^ String.make 14 '\x00')

let test_compression_shares_suffixes () =
  (* Three records under the same parent: the compressed form must be
     smaller and still round-trip. *)
  let n s = Name.of_string_exn s in
  let rrs =
    [ Rr.a (n "a.deep.example.com") 1; Rr.a (n "b.deep.example.com") 2;
      Rr.a (n "c.deep.example.com") 3 ]
  in
  let m =
    {
      (Wire.query (Message.query (n "deep.example.com") Rr.A)) with
      Wire.qr = true;
      answer = rrs;
    }
  in
  let compressed = Wire.encode m and plain = Wire.encode ~compress:false m in
  check_bool "compression saves bytes" true
    (String.length compressed < String.length plain);
  (match Wire.decode compressed with
  | Ok m' -> check_bool "compressed round-trip" true (Wire.equal m m')
  | Error e -> Alcotest.failf "compressed decode failed: %s" (Wire.error_to_string e))

let test_aaaa_negative_roundtrip () =
  let n = Name.of_string_exn "v6.example.com" in
  let m =
    { (Wire.query (Message.query n Rr.AAAA)) with
      Wire.qr = true; answer = [ Rr.aaaa n (-42) ] }
  in
  match Wire.decode (Wire.encode m) with
  | Ok m' -> check_bool "negative AAAA address survives" true (Wire.equal m m')
  | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e)

let test_txt_chunking_roundtrip () =
  let n = Name.of_string_exn "txt.example.com" in
  List.iter
    (fun len ->
      let text = String.init len (fun i -> Char.chr (i land 0xFF)) in
      let m =
        { (Wire.query (Message.query n Rr.TXT)) with
          Wire.qr = true; answer = [ Rr.txt n text ] }
      in
      match Wire.decode (Wire.encode m) with
      | Ok m' ->
          check_bool (Printf.sprintf "TXT of %d bytes round-trips" len) true
            (Wire.equal m m')
      | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e))
    [ 0; 1; 255; 256; 700 ]

let test_encode_truncated () =
  let n = Name.of_string_exn "big.example.com" in
  let m =
    {
      (Wire.query (Message.query n Rr.TXT)) with
      Wire.qr = true;
      answer = List.init 20 (fun i -> Rr.txt n (String.make 60 (Char.chr (65 + i))));
    }
  in
  let full = Wire.encode m in
  check_bool "test premise: full encoding exceeds 512" true
    (String.length full > Wire.max_udp_payload);
  let bytes, truncated = Wire.encode_truncated ~max_size:Wire.max_udp_payload m in
  check_bool "truncation reported" true truncated;
  check_bool "fits the UDP bound" true (String.length bytes <= Wire.max_udp_payload);
  match Wire.decode bytes with
  | Ok m' ->
      check_bool "TC set" true m'.Wire.tc;
      check_int "question survives" 1 (List.length m'.Wire.question);
      check_int "answers dropped" 0 (List.length m'.Wire.answer)
  | Error e -> Alcotest.failf "truncated reply undecodable: %s" (Wire.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Serve loop degradations                                            *)
(* ------------------------------------------------------------------ *)

let server =
  lazy
    (Serve.create
       ~config:(Engine.Versions.fixed Engine.Versions.v3_0)
       Spec.Fixtures.reference_zone)

let valid_query ?(id = 0x7777) name rtype =
  Wire.encode (Wire.query ~id (Message.query (Name.of_string_exn name) rtype))

let decode_exn bytes =
  match Wire.decode bytes with
  | Ok m -> m
  | Error e -> Alcotest.failf "reply undecodable: %s" (Wire.error_to_string e)

let test_serve_answers_match_spec () =
  fi @@ fun () ->
  let s = Lazy.force server in
  let zone = Serve.zone s in
  List.iter
    (fun (name, rtype) ->
      let q = Message.query (Name.of_string_exn name) rtype in
      let o = Serve.handle s (Wire.encode (Wire.query ~id:9 q)) in
      match o.Serve.reply with
      | None -> Alcotest.failf "no reply for %s" name
      | Some bytes ->
          let m = decode_exn bytes in
          check_int "id echoed" 9 m.Wire.id;
          check_bool "qr set" true m.Wire.qr;
          check_bool
            (Printf.sprintf "%s %s matches the spec" name
               (Rr.rtype_to_string rtype))
            true
            (Message.equal_response
               (Spec.Rrlookup.resolve zone q)
               (Wire.to_response m)))
    [
      ("www.example.com", Rr.A); ("example.com", Rr.MX);
      ("missing.example.com", Rr.A); ("example.com", Rr.TXT);
      ("other.org", Rr.A);
    ]

let test_serve_garbage_formerr () =
  fi @@ fun () ->
  let s = Lazy.force server in
  (* A full header (id 0xBEEF, QR clear) followed by garbage. *)
  let datagram = "\xBE\xEF\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00" ^ "\xFF\x07!!" in
  let o = Serve.handle s datagram in
  (match o.Serve.disposition with
  | Serve.Formerr _ -> ()
  | d -> Alcotest.failf "expected formerr, got %s" (Serve.disposition_to_string d));
  let m = decode_exn (Option.get o.Serve.reply) in
  check_int "id echoed from the garbled query" 0xBEEF m.Wire.id;
  check_string "rcode" "FORMERR" (Message.rcode_to_string m.Wire.rcode)

let test_serve_drops_unanswerable () =
  fi @@ fun () ->
  let s = Lazy.force server in
  (* Too short to echo an id. *)
  let o = Serve.handle s "ab" in
  check_bool "short fragment dropped" true (o.Serve.reply = None);
  (* A response: replying would start a loop. *)
  let reply = Bytes.of_string (valid_query "www.example.com" Rr.A) in
  Bytes.set reply 2 (Char.chr (Char.code (Bytes.get reply 2) lor 0x80));
  let o = Serve.handle s (Bytes.to_string reply) in
  check_bool "qr-set datagram dropped" true (o.Serve.reply = None)

let test_serve_notimp () =
  fi @@ fun () ->
  let s = Lazy.force server in
  let q = Wire.query ~id:5 (Message.query (Name.of_string_exn "www.example.com") Rr.A) in
  let o = Serve.handle s (Wire.encode { q with Wire.opcode = 4 }) in
  (match o.Serve.disposition with
  | Serve.Notimp 4 -> ()
  | d -> Alcotest.failf "expected notimp, got %s" (Serve.disposition_to_string d));
  let m = decode_exn (Option.get o.Serve.reply) in
  check_string "rcode" "NOTIMP" (Message.rcode_to_string m.Wire.rcode);
  check_int "opcode echoed" 4 m.Wire.opcode

let test_serve_fault_servfail () =
  fi @@ fun () ->
  let s = Lazy.force server in
  Faultinject.arm ~after:1 Faultinject.Serve_overload;
  let (o, forest) =
    Trace.recording (fun () -> Serve.handle s (valid_query "www.example.com" Rr.A))
  in
  (match o.Serve.disposition with
  | Serve.Servfail reason ->
      check_string "machine-readable reason" "injected-fault" reason
  | d -> Alcotest.failf "expected servfail, got %s" (Serve.disposition_to_string d));
  let m = decode_exn (Option.get o.Serve.reply) in
  check_string "rcode" "SERVFAIL" (Message.rcode_to_string m.Wire.rcode);
  check_int "id echoed" 0x7777 m.Wire.id;
  (* The degradation leaves its root cause in the trace. *)
  let json = Trace.chrome_json forest in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check_bool "servfail event recorded" true (contains json "serve.servfail");
  check_bool "reason attribute recorded" true (contains json "injected-fault")

let test_serve_engine_panic_servfail () =
  fi @@ fun () ->
  let s = Lazy.force server in
  (* Seven labels exceed the engine layout's qname capacity: the
     verified core panics, the wire path degrades to SERVFAIL. *)
  let o = Serve.handle s (valid_query "a.b.c.d.e.f.example.com" Rr.A) in
  match o.Serve.disposition with
  | Serve.Servfail reason ->
      check_bool "reason names the panic" true
        (String.length reason >= 12 && String.sub reason 0 12 = "engine-panic")
  | d -> Alcotest.failf "expected servfail, got %s" (Serve.disposition_to_string d)

let test_serve_garble_fault_degrades () =
  fi @@ fun () ->
  let s = Lazy.force server in
  Faultinject.arm ~after:1 Faultinject.Wire_garble;
  let o = Serve.handle s (valid_query "www.example.com" Rr.A) in
  (* The mangled datagram may still decode (then it is answered) or
     fail a guard (then FORMERR) — but never anything else. *)
  match o.Serve.disposition with
  | Serve.Answered | Serve.Formerr _ | Serve.Dropped _ -> ()
  | d -> Alcotest.failf "unexpected disposition %s" (Serve.disposition_to_string d)

(* ------------------------------------------------------------------ *)
(* Loadgen                                                            *)
(* ------------------------------------------------------------------ *)

let test_loadgen_inproc_all_answered () =
  fi @@ fun () ->
  let s = Lazy.force server in
  let mix = { Loadgen.queries = 120; malformed_pct = 15; seed = 77 } in
  let r = Loadgen.run ~zone:(Serve.zone s) (Loadgen.inproc s) mix in
  check_bool "all answered" true (Loadgen.all_answered r);
  check_int "sent" 120 r.Loadgen.lg_sent;
  check_bool "the mix contained garbage" true (r.Loadgen.lg_malformed > 0);
  check_bool "garbage got FORMERR replies" true
    (List.mem_assoc "FORMERR" r.Loadgen.lg_rcodes);
  check_bool "positive qps" true (r.Loadgen.lg_qps > 0.0);
  check_bool "percentiles ordered" true
    (r.Loadgen.lg_p50_ms <= r.Loadgen.lg_p90_ms
    && r.Loadgen.lg_p90_ms <= r.Loadgen.lg_p99_ms)

let test_loadgen_deterministic_mix () =
  let zone = Spec.Fixtures.reference_zone in
  let mix = { Loadgen.queries = 50; malformed_pct = 20; seed = 3 } in
  for i = 0 to 49 do
    let k1, b1 = Loadgen.datagram ~zone mix i in
    let k2, b2 = Loadgen.datagram ~zone mix i in
    check_bool "same kind" true (k1 = k2);
    check_string "same bytes" b1 b2
  done

(* ------------------------------------------------------------------ *)
(* Kill and restart                                                   *)
(* ------------------------------------------------------------------ *)

let test_kill_and_restart_under_load () =
  fi @@ fun () ->
  let s = Lazy.force server in
  let zone = Serve.zone s in
  let fd = Unix.socket PF_INET SOCK_DGRAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, 0));
      let port =
        match Unix.getsockname fd with
        | ADDR_INET (_, p) -> p
        | _ -> Alcotest.fail "no port"
      in
      (* The server is a child process serving the inherited socket, so
         SIGKILL is a real mid-load crash: no atexit, no flush. *)
      let spawn () =
        match Unix.fork () with
        | 0 ->
            (try Serve.serve_fd s fd with _ -> ());
            Unix._exit 0
        | pid -> pid
      in
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      let batch seed =
        Loadgen.with_udp ~timeout_s:5.0 addr (fun t ->
            Loadgen.run ~zone t
              { Loadgen.queries = 40; malformed_pct = 10; seed })
      in
      let pid1 = spawn () in
      let r1 = batch 11 in
      Unix.kill pid1 Sys.sigkill;
      ignore (Unix.waitpid [] pid1);
      let pid2 = spawn () in
      let r2 = batch 12 in
      Unix.kill pid2 Sys.sigkill;
      ignore (Unix.waitpid [] pid2);
      (* Every settled query was answered; the kill between batches had
         no in-flight query to lose. *)
      check_bool "first incarnation answered everything" true
        (Loadgen.all_answered r1);
      check_bool "restarted incarnation answered everything" true
        (Loadgen.all_answered r2))

(* ------------------------------------------------------------------ *)
(* hist_quantile                                                      *)
(* ------------------------------------------------------------------ *)

let test_hist_quantile () =
  let h = Trace.Metrics.histogram "test.wire.quantile" in
  let before = Trace.Metrics.snapshot () in
  List.iter (Trace.Metrics.observe h) [ 1.0; 1.5; 3.0; 6.0; 100.0 ];
  let after = Trace.Metrics.snapshot () in
  match Trace.Metrics.get_hist (Trace.Metrics.diff after before) "test.wire.quantile" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hist ->
      let q50 = Trace.Metrics.hist_quantile hist 0.5 in
      let q100 = Trace.Metrics.hist_quantile hist 1.0 in
      check_bool "median covers the median sample" true (q50 >= 1.5);
      check_bool "q1.0 covers the max" true (q100 >= 100.0);
      check_bool "quantiles are monotone" true (q50 <= q100);
      check_bool "empty histogram quantile is 0" true
        (Trace.Metrics.hist_quantile
           { Trace.Metrics.h_count = 0; h_sum = 0.0; h_buckets = [||] }
           0.9
        = 0.0)

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        qcheck [ prop_roundtrip; prop_decode_total_random; prop_decode_total_mutated ]
        @ [
            Alcotest.test_case "selfcheck battery" `Quick test_selfcheck_battery;
            Alcotest.test_case "crafted guard cases" `Quick test_guards;
            Alcotest.test_case "compression shares suffixes" `Quick
              test_compression_shares_suffixes;
            Alcotest.test_case "negative AAAA round-trip" `Quick
              test_aaaa_negative_roundtrip;
            Alcotest.test_case "TXT chunking round-trip" `Quick
              test_txt_chunking_roundtrip;
            Alcotest.test_case "TC truncation" `Quick test_encode_truncated;
            Alcotest.test_case "barrier never hit" `Quick test_barrier_never_hit;
          ] );
      ( "serve",
        [
          Alcotest.test_case "answers match the spec" `Quick
            test_serve_answers_match_spec;
          Alcotest.test_case "garbage gets FORMERR" `Quick
            test_serve_garbage_formerr;
          Alcotest.test_case "unanswerable datagrams dropped" `Quick
            test_serve_drops_unanswerable;
          Alcotest.test_case "unsupported opcode gets NOTIMP" `Quick
            test_serve_notimp;
          Alcotest.test_case "injected overload gets SERVFAIL" `Quick
            test_serve_fault_servfail;
          Alcotest.test_case "engine panic gets SERVFAIL" `Quick
            test_serve_engine_panic_servfail;
          Alcotest.test_case "garbled datagram degrades" `Quick
            test_serve_garble_fault_degrades;
          Alcotest.test_case "kill and restart under load" `Quick
            test_kill_and_restart_under_load;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "in-process mix all answered" `Quick
            test_loadgen_inproc_all_answered;
          Alcotest.test_case "mix is deterministic" `Quick
            test_loadgen_deterministic_mix;
          Alcotest.test_case "hist_quantile" `Quick test_hist_quantile;
        ] );
    ]
