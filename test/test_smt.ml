(* Tests for the SMT substrate: rationals, linear forms, simplex, LIA
   branch-and-bound, and the DPLL(T) solver facade.

   The cornerstone property test checks the full solver against a
   brute-force evaluator on a bounded integer domain: a SAT verdict must
   come with a model that satisfies the formula, and an UNSAT verdict
   must survive exhaustive search. *)

open Smt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Q                                                                  *)
(* ------------------------------------------------------------------ *)

let test_q_basics () =
  let half = Q.make 1 2 in
  let third = Q.make 1 3 in
  check_bool "1/2 + 1/3 = 5/6" true Q.(equal (add half third) (make 5 6));
  check_bool "normalization 2/4 = 1/2" true Q.(equal (make 2 4) half);
  check_bool "negative den" true Q.(equal (make 1 (-2)) (make (-1) 2));
  check_int "floor 5/2" 2 (Q.floor (Q.make 5 2));
  check_int "floor -5/2" (-3) (Q.floor (Q.make (-5) 2));
  check_int "ceil 5/2" 3 (Q.ceil (Q.make 5 2));
  check_int "ceil -5/2" (-2) (Q.ceil (Q.make (-5) 2));
  check_bool "compare" true (Q.lt (Q.make 1 3) (Q.make 1 2));
  check_bool "is_integer 4/2" true (Q.is_integer (Q.make 4 2));
  check_int "to_int_exn" 2 (Q.to_int_exn (Q.make 4 2))

let q_gen =
  QCheck.Gen.(
    map2 (fun n d -> Q.make n d) (int_range (-50) 50) (int_range 1 20))

let arb_q = QCheck.make ~print:Q.to_string q_gen

let prop_q_add_comm =
  QCheck.Test.make ~name:"Q.add commutative" ~count:200
    (QCheck.pair arb_q arb_q)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_q_mul_inv =
  QCheck.Test.make ~name:"Q: a * (1/a) = 1 for a != 0" ~count:200 arb_q
    (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal (Q.mul a (Q.inv a)) Q.one)

let prop_q_floor_le =
  QCheck.Test.make ~name:"Q: floor a <= a < floor a + 1" ~count:200 arb_q
    (fun a ->
      let f = Q.of_int (Q.floor a) in
      Q.le f a && Q.lt a (Q.add f Q.one))

(* ------------------------------------------------------------------ *)
(* Linear                                                             *)
(* ------------------------------------------------------------------ *)

let x = Term.int_var "x"
let y = Term.int_var "y"
let z = Term.int_var "z"

let test_linear_normalization () =
  (* 2x + 3 - x + y - 3  ==  x + y *)
  let t =
    Term.add
      [ Term.mul_const 2 x; Term.int 3; Term.neg x; y; Term.int (-3) ]
  in
  let lin = Linear.of_term t in
  check_int "coeff x" 1 (Linear.coeff "x" lin);
  check_int "coeff y" 1 (Linear.coeff "y" lin);
  check_int "free" 0 (Linear.coeff_free lin);
  let env = function "x" -> 7 | "y" -> -2 | _ -> 0 in
  check_int "eval" 5 (Linear.eval env lin)

let test_linear_atom () =
  (* x < y  over ints tightens to  x - y + 1 <= 0 *)
  match Linear.atom_of_term (Term.lt x y) with
  | Some (Linear.Le_zero lin) ->
      check_int "tightened const" 1 (Linear.coeff_free lin);
      check_int "x coeff" 1 (Linear.coeff "x" lin);
      check_int "y coeff" (-1) (Linear.coeff "y" lin)
  | _ -> Alcotest.fail "expected Le_zero"

let test_linear_negate () =
  (* ¬(x ≤ 0) = 1 − x ≤ 0, i.e. x ≥ 1 *)
  match Linear.atom_of_term (Term.le x (Term.int 0)) with
  | Some atom -> (
      match Linear.negate_atom atom with
      | Linear.Le_zero lin ->
          check_bool "x=1 satisfies x>=1" true
            (Linear.eval (fun _ -> 1) lin <= 0);
          check_bool "x=0 violates x>=1" false
            (Linear.eval (fun _ -> 0) lin <= 0)
      | _ -> Alcotest.fail "expected Le_zero")
  | None -> Alcotest.fail "expected atom"

(* ------------------------------------------------------------------ *)
(* Simplex                                                            *)
(* ------------------------------------------------------------------ *)

let bound ?lo ?hi () =
  { Simplex.lower = Option.map Q.of_int lo; upper = Option.map Q.of_int hi }

let test_simplex_feasible () =
  (* x + y <= 4, x >= 1, y >= 2: feasible *)
  let s =
    Simplex.create ~nvars:2
      ~rows:[ [ (Q.one, 0); (Q.one, 1) ] ]
      ~bound_of:(fun i ->
        match i with
        | 0 -> bound ~lo:1 ()
        | 1 -> bound ~lo:2 ()
        | _ -> bound ~hi:4 ())
  in
  match Simplex.check s with
  | Simplex.Feasible beta ->
      check_bool "x >= 1" true (Q.ge beta.(0) Q.one);
      check_bool "y >= 2" true (Q.ge beta.(1) (Q.of_int 2));
      check_bool "x + y <= 4" true (Q.le (Q.add beta.(0) beta.(1)) (Q.of_int 4))
  | Simplex.Infeasible _ -> Alcotest.fail "should be feasible"

let test_simplex_infeasible () =
  (* x + y <= 1, x >= 1, y >= 1: infeasible *)
  let s =
    Simplex.create ~nvars:2
      ~rows:[ [ (Q.one, 0); (Q.one, 1) ] ]
      ~bound_of:(fun i ->
        match i with
        | 0 -> bound ~lo:1 ()
        | 1 -> bound ~lo:1 ()
        | _ -> bound ~hi:1 ())
  in
  match Simplex.check s with
  | Simplex.Feasible _ -> Alcotest.fail "should be infeasible"
  | Simplex.Infeasible _ -> ()

let test_simplex_equalities () =
  (* x - y = 0, x + y = 6 → x = y = 3 *)
  let s =
    Simplex.create ~nvars:2
      ~rows:
        [ [ (Q.one, 0); (Q.minus_one, 1) ]; [ (Q.one, 0); (Q.one, 1) ] ]
      ~bound_of:(fun i ->
        match i with
        | 2 -> bound ~lo:0 ~hi:0 ()
        | 3 -> bound ~lo:6 ~hi:6 ()
        | _ -> Simplex.no_bound)
  in
  match Simplex.check s with
  | Simplex.Feasible beta ->
      check_bool "x = 3" true (Q.equal beta.(0) (Q.of_int 3));
      check_bool "y = 3" true (Q.equal beta.(1) (Q.of_int 3))
  | Simplex.Infeasible _ -> Alcotest.fail "should be feasible"

(* ------------------------------------------------------------------ *)
(* LIA                                                                *)
(* ------------------------------------------------------------------ *)

let atom t =
  match Linear.atom_of_term t with
  | Some a -> a
  | None -> Alcotest.fail "not an atom"

let test_lia_integrality () =
  (* 2x = 1 has a rational solution but no integer one. *)
  let a = atom (Term.eq (Term.mul_const 2 x) (Term.int 1)) in
  (match Lia.check [ a ] with
  | Lia.Unsat -> ()
  | _ -> Alcotest.fail "2x=1 must be int-unsat");
  (* 2x = 4 is fine. *)
  let b = atom (Term.eq (Term.mul_const 2 x) (Term.int 4)) in
  match Lia.check [ b ] with
  | Lia.Sat m -> check_int "x" 2 (Lia.String_map.find "x" m)
  | _ -> Alcotest.fail "2x=4 must be sat"

let test_lia_neq () =
  (* 0 <= x <= 1 ∧ x ≠ 0 ∧ x ≠ 1 is unsat over ℤ. *)
  let atoms =
    [
      atom (Term.le (Term.int 0) x);
      atom (Term.le x (Term.int 1));
      Linear.Neq_zero (Linear.var "x");
      Linear.Neq_zero (Linear.add (Linear.var "x") (Linear.const (-1)));
    ]
  in
  (match Lia.check atoms with
  | Lia.Unsat -> ()
  | _ -> Alcotest.fail "should be unsat");
  (* Relaxing to 0 <= x <= 2 gives x = 2. *)
  let atoms' =
    [
      atom (Term.le (Term.int 0) x);
      atom (Term.le x (Term.int 2));
      Linear.Neq_zero (Linear.var "x");
      Linear.Neq_zero (Linear.add (Linear.var "x") (Linear.const (-1)));
    ]
  in
  match Lia.check atoms' with
  | Lia.Sat m -> check_int "x = 2" 2 (Lia.String_map.find "x" m)
  | _ -> Alcotest.fail "should be sat"

let test_lia_system () =
  (* x + y <= 5 ∧ x - y >= 3 ∧ y >= 1 → x >= 4, x <= 4 → x = 4, y = 1 *)
  let atoms =
    [
      atom (Term.le (Term.add [ x; y ]) (Term.int 5));
      atom (Term.le (Term.int 3) (Term.sub x y));
      atom (Term.le (Term.int 1) y);
    ]
  in
  match Lia.check atoms with
  | Lia.Sat m ->
      let xv = Lia.String_map.find "x" m and yv = Lia.String_map.find "y" m in
      check_bool "constraints hold" true
        (xv + yv <= 5 && xv - yv >= 3 && yv >= 1)
  | _ -> Alcotest.fail "should be sat"

(* ------------------------------------------------------------------ *)
(* Solver                                                             *)
(* ------------------------------------------------------------------ *)

let test_solver_conjunction () =
  match Solver.check [ Term.eq x (Term.int 3); Term.lt y x ] with
  | Solver.Sat m ->
      check_int "x" 3 (Model.get_int "x" m);
      check_bool "y < 3" true (Model.get_int "y" m < 3)
  | _ -> Alcotest.fail "sat expected"

let test_solver_unsat_conjunction () =
  check_bool "x<2 & x>2 unsat" true
    (Solver.is_unsat [ Term.lt x (Term.int 2); Term.gt x (Term.int 2) ])

let test_solver_disjunction () =
  (* (x = 1 ∨ x = 2) ∧ x ≠ 1 → x = 2 *)
  let f =
    Term.and_
      [
        Term.or_ [ Term.eq x (Term.int 1); Term.eq x (Term.int 2) ];
        Term.neq x (Term.int 1);
      ]
  in
  match Solver.check [ f ] with
  | Solver.Sat m -> check_int "x" 2 (Model.get_int "x" m)
  | _ -> Alcotest.fail "sat expected"

let test_solver_bool_structure () =
  let a = Term.bool_var "a" and b = Term.bool_var "b" in
  (* (a → b) ∧ a ∧ ¬b is unsat *)
  check_bool "modus ponens" true
    (Solver.is_unsat [ Term.implies a b; a; Term.not_ b ]);
  (* (a ↔ b) ∧ a → b must hold *)
  match Solver.check [ Term.iff a b; a ] with
  | Solver.Sat m -> check_bool "b true" true (Model.get_bool "b" m)
  | _ -> Alcotest.fail "sat expected"

let test_solver_ite () =
  (* ite(x > 0, y, z) = 7 ∧ x = 1 ∧ z = 0 → y = 7 *)
  let f =
    Term.and_
      [
        Term.eq (Term.ite (Term.gt x (Term.int 0)) y z) (Term.int 7);
        Term.eq x (Term.int 1);
        Term.eq z (Term.int 0);
      ]
  in
  match Solver.check [ f ] with
  | Solver.Sat m -> check_int "y" 7 (Model.get_int "y" m)
  | _ -> Alcotest.fail "sat expected"

let test_solver_entails () =
  (* x = 3 ⊢ x <= 5 *)
  (match Solver.entails ~hyps:[ Term.eq x (Term.int 3) ] (Term.le x (Term.int 5)) with
  | Solver.Valid -> ()
  | _ -> Alcotest.fail "entailment expected");
  match Solver.entails ~hyps:[ Term.le x (Term.int 5) ] (Term.eq x (Term.int 3)) with
  | Solver.Counterexample m ->
      check_bool "cex respects hyps" true (Model.get_int "x" m <= 5);
      check_bool "cex violates goal" true (Model.get_int "x" m <> 3)
  | _ -> Alcotest.fail "counterexample expected"

(* ------------------------------------------------------------------ *)
(* Property: solver agrees with brute force on a bounded domain.      *)
(* ------------------------------------------------------------------ *)

let term_gen : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  let int_leaf =
    oneof
      [
        map Term.int (int_range (-4) 4);
        oneofl [ x; y; z ];
      ]
  in
  let int_term =
    oneof
      [
        int_leaf;
        map2 (fun a b -> Term.add [ a; b ]) int_leaf int_leaf;
        map2 Term.sub int_leaf int_leaf;
        map (fun a -> Term.mul_const 2 a) int_leaf;
      ]
  in
  let cmp =
    oneof
      [
        map2 Term.eq int_term int_term;
        map2 Term.le int_term int_term;
        map2 Term.lt int_term int_term;
      ]
  in
  fix
    (fun self n ->
      if n = 0 then cmp
      else
        frequency
          [
            (3, cmp);
            (2, map2 (fun a b -> Term.and_ [ a; b ]) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Term.or_ [ a; b ]) (self (n / 2)) (self (n / 2)));
            (1, map Term.not_ (self (n - 1)));
            (1, map2 Term.implies (self (n / 2)) (self (n / 2)));
          ])
    3

let arb_term = QCheck.make ~print:Term.to_string term_gen

let brute_force_sat (t : Term.t) =
  let dom = [ -3; -2; -1; 0; 1; 2; 3 ] in
  List.exists
    (fun xv ->
      List.exists
        (fun yv ->
          List.exists
            (fun zv ->
              let env = function
                | "x" -> Some (Term.VInt xv)
                | "y" -> Some (Term.VInt yv)
                | "z" -> Some (Term.VInt zv)
                | _ -> None
              in
              Term.eval_bool env t)
            dom)
        dom)
    dom

let prop_solver_vs_brute_force =
  QCheck.Test.make ~name:"solver agrees with brute force" ~count:300 arb_term
    (fun t ->
      match Solver.check [ t ] with
      | Solver.Sat m -> Model.satisfies m t
      | Solver.Unsat -> not (brute_force_sat t)
      | Solver.Unknown -> true)

let prop_solver_model_satisfies =
  QCheck.Test.make ~name:"SAT models satisfy the formula" ~count:300 arb_term
    (fun t ->
      match Solver.check [ t ] with
      | Solver.Sat m -> Model.satisfies m t
      | Solver.Unsat | Solver.Unknown -> true)

let prop_brute_force_sat_implies_not_unsat =
  QCheck.Test.make ~name:"brute-force SAT refutes UNSAT verdicts" ~count:300
    arb_term (fun t ->
      if brute_force_sat t then
        match Solver.check [ t ] with
        | Solver.Unsat -> false
        | _ -> true
      else true)

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "smt"
    [
      ( "q",
        [
          Alcotest.test_case "basics" `Quick test_q_basics;
        ]
        @ qcheck [ prop_q_add_comm; prop_q_mul_inv; prop_q_floor_le ] );
      ( "linear",
        [
          Alcotest.test_case "normalization" `Quick test_linear_normalization;
          Alcotest.test_case "strict tightening" `Quick test_linear_atom;
          Alcotest.test_case "negation" `Quick test_linear_negate;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "feasible" `Quick test_simplex_feasible;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "equalities" `Quick test_simplex_equalities;
        ] );
      ( "lia",
        [
          Alcotest.test_case "integrality" `Quick test_lia_integrality;
          Alcotest.test_case "disequality splitting" `Quick test_lia_neq;
          Alcotest.test_case "system" `Quick test_lia_system;
        ] );
      ( "solver",
        [
          Alcotest.test_case "conjunction" `Quick test_solver_conjunction;
          Alcotest.test_case "unsat conjunction" `Quick
            test_solver_unsat_conjunction;
          Alcotest.test_case "disjunction" `Quick test_solver_disjunction;
          Alcotest.test_case "boolean structure" `Quick
            test_solver_bool_structure;
          Alcotest.test_case "integer ite" `Quick test_solver_ite;
          Alcotest.test_case "entailment" `Quick test_solver_entails;
        ]
        @ qcheck
            [
              prop_solver_vs_brute_force;
              prop_solver_model_satisfies;
              prop_brute_force_sat_implies_not_unsat;
            ] );
    ]
