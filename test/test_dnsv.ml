(* Integration tests for the dnsv facade: the pipeline, the four
   experiment drivers (Tables 1–3, Figure 12), batch verification over
   generated zones, and the LoC accounting. *)

module Rr = Dns.Rr
module Name = Dns.Name
module Versions = Engine.Versions
module Builder = Engine.Builder

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                           *)
(* ------------------------------------------------------------------ *)

let test_pipeline_clean_verdict () =
  let zone = Spec.Fixtures.figure11_zone in
  let v =
    Dnsv.Pipeline.verify ~qtypes:[ Rr.A ] (Versions.fixed Versions.v3_0) zone
  in
  check_bool "clean" true (Dnsv.Pipeline.clean v);
  check_bool "layers checked" true (v.Dnsv.Pipeline.layer_reports <> []);
  check_int "one report" 1 (List.length v.Dnsv.Pipeline.reports);
  check_bool "no issues" true (Dnsv.Pipeline.issues v = []);
  (* Rendering smoke test. *)
  let s = Dnsv.Pipeline.verdict_to_string v in
  check_bool "mentions VERIFIED" true
    (Astring.String.is_infix ~affix:"VERIFIED" s)

let test_pipeline_dirty_verdict () =
  let w = Spec.Fixtures.witness 6 in
  let v =
    Dnsv.Pipeline.verify ~qtypes:[ Rr.A ] ~check_layers:false Versions.v2_0
      w.Spec.Fixtures.zone
  in
  check_bool "dirty" false (Dnsv.Pipeline.clean v);
  check_bool "issues reported" true (Dnsv.Pipeline.issues v <> [])

let test_verify_batch () =
  match
    Dnsv.Pipeline.verify_batch ~qtypes:[ Rr.A ] ~count:3 ~seed:11
      (Versions.fixed Versions.v3_0)
      (Name.of_string_exn "batch.example")
  with
  | Dnsv.Pipeline.All_clean n -> check_int "all zones verified" 3 n
  | Dnsv.Pipeline.Failed { zone_index; verdict } ->
      Alcotest.failf "zone %d failed:@.%s" zone_index
        (Dnsv.Pipeline.verdict_to_string verdict)
  | Dnsv.Pipeline.Partial { reason; _ } ->
      Alcotest.failf "batch unexpectedly partial: %s"
        (Budget.reason_to_string reason)

let test_verify_batch_catches_buggy () =
  (* v1.0's MX confusion shows up on generated zones (they contain MX
     records), so the batch must fail. *)
  match
    Dnsv.Pipeline.verify_batch ~qtypes:[ Rr.MX ] ~count:5 ~seed:11
      Versions.v1_0
      (Name.of_string_exn "batch.example")
  with
  | Dnsv.Pipeline.All_clean _ ->
      Alcotest.fail "buggy engine must fail batch verification"
  | Dnsv.Pipeline.Failed _ -> ()
  | Dnsv.Pipeline.Partial { reason; _ } ->
      Alcotest.failf "batch unexpectedly partial: %s"
        (Budget.reason_to_string reason)

(* ------------------------------------------------------------------ *)
(* Experiment drivers                                                 *)
(* ------------------------------------------------------------------ *)

let test_table1_driver () =
  let r = Dnsv.Table1.run () in
  check_int "14 paths (Table 1)" 14 (List.length r.Dnsv.Table1.rows);
  (* Exactly one EXACT row per tree node (5 nodes in Figure 11). *)
  let exact =
    List.filter (fun row -> row.Dnsv.Table1.kind = "EXACT") r.Dnsv.Table1.rows
  in
  check_int "5 exact rows" 5 (List.length exact);
  List.iter
    (fun row ->
      check_bool "example under origin" true
        (Name.is_under
           ~ancestor:(Name.of_string_exn "example.com")
           (Name.of_string_exn row.Dnsv.Table1.example_qname)))
    r.Dnsv.Table1.rows

let test_table2_driver () =
  let r = Dnsv.Table2.run () in
  check_int "nine rows" 9 (List.length r.Dnsv.Table2.rows);
  check_bool "all caught, all fixed clean" true (Dnsv.Table2.all_caught r);
  (* Bug 9 is the runtime error; the rest are mismatches. *)
  List.iter
    (fun (row : Dnsv.Table2.row) ->
      match row.Dnsv.Table2.evidence with
      | Dnsv.Table2.Runtime_error _ ->
          check_int "only bug 9 is a runtime error" 9 row.Dnsv.Table2.index
      | Dnsv.Table2.Mismatch _ ->
          check_bool "bugs 1-8 are mismatches" true (row.Dnsv.Table2.index < 9)
      | Dnsv.Table2.Not_caught -> Alcotest.fail "nothing may escape")
    r.Dnsv.Table2.rows

let test_table3_driver () =
  let r = Dnsv.Table3.run () in
  check_int "five artifacts" 5 (List.length r.Dnsv.Table3.rows);
  (* The implementation row dominates the spec rows, as in the paper. *)
  let impl =
    int_of_string
      (List.find
         (fun (row : Dnsv.Table3.row) -> row.Dnsv.Table3.artifact = "implementation")
         r.Dnsv.Table3.rows)
        .Dnsv.Table3.v2_size
  in
  check_bool "implementation is the largest artifact" true (impl > 200);
  check_bool "per-function sizes cover resolve" true
    (List.mem_assoc "resolve" r.Dnsv.Table3.impl_sizes)

let test_fig12_driver () =
  let r =
    Dnsv.Fig12.run ~zone:Spec.Fixtures.figure11_zone ~qtypes:[ Rr.A ] ()
  in
  let layers = List.map (fun row -> row.Dnsv.Fig12.layer) r.Dnsv.Fig12.rows in
  List.iter
    (fun expected ->
      check_bool (expected ^ " present") true (List.mem expected layers))
    [ "compareNames"; "compareRaw"; "treeSearch"; "resolve" ];
  (* The paper's headline: every layer under a minute. *)
  List.iter
    (fun row ->
      check_bool (row.Dnsv.Fig12.layer ^ " under 60s") true
        (row.Dnsv.Fig12.seconds < 60.0))
    r.Dnsv.Fig12.rows;
  check_bool "top level verified" true
    (let top =
       List.find (fun row -> row.Dnsv.Fig12.layer = "resolve") r.Dnsv.Fig12.rows
     in
     Astring.String.is_infix ~affix:"verified" top.Dnsv.Fig12.detail)

(* ------------------------------------------------------------------ *)
(* LoC accounting                                                     *)
(* ------------------------------------------------------------------ *)

let test_loc_accounting () =
  let p2 = Builder.golite_program Versions.v2_0 in
  let p3 = Builder.golite_program Versions.v3_0 in
  check_bool "program has size" true (Dnsv.Loc.program_size p2 > 100);
  let changed = Dnsv.Loc.changed_functions p2 p3 in
  check_bool "v2->v3 changed some functions" true (changed <> []);
  check_bool "resolve changed in v3" true (List.mem_assoc "resolve" changed);
  (* Identical versions have no diff. *)
  check_int "self diff" 0 (Dnsv.Loc.changed_size p2 p2);
  (* The fixed variant differs from the buggy one. *)
  let p2f = Builder.golite_program (Versions.fixed Versions.v2_0) in
  check_bool "fix is a real change" true (Dnsv.Loc.changed_size p2 p2f > 0)

let () =
  Alcotest.run "dnsv"
    [
      ( "pipeline",
        [
          Alcotest.test_case "clean verdict" `Quick test_pipeline_clean_verdict;
          Alcotest.test_case "dirty verdict" `Quick test_pipeline_dirty_verdict;
          Alcotest.test_case "batch over generated zones" `Slow
            test_verify_batch;
          Alcotest.test_case "batch catches buggy engine" `Slow
            test_verify_batch_catches_buggy;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "Table 1 driver" `Quick test_table1_driver;
          Alcotest.test_case "Table 2 driver" `Slow test_table2_driver;
          Alcotest.test_case "Table 3 driver" `Quick test_table3_driver;
          Alcotest.test_case "Figure 12 driver" `Slow test_fig12_driver;
        ] );
      ( "loc",
        [ Alcotest.test_case "accounting" `Quick test_loc_accounting ] );
    ]
