(* The dnsv command-line interface.

     dnsv verify    — verify an engine version against the top-level spec
     dnsv batch     — verify a batch of generated zones (journaled, resumable)
     dnsv chaos     — seeded fault-injection soak over the pipeline
     dnsv lint      — static-analysis findings over the bundled engines
     dnsv layers    — verify the dependency layers against manual specs
     dnsv summarize — summarize TreeSearch (Table-1 style output)
     dnsv bugs      — list the Table-2 bug registry
     dnsv zonegen   — generate random zone configurations
     dnsv replay    — run one concrete query on engine and spec
     dnsv serve     — answer RFC 1035 UDP queries with a verified engine
     dnsv loadgen   — fire a seeded (partly malformed) query mix at a server
     dnsv wire      — check the wire decoder's panic guards are discharged
     dnsv top       — live per-window dashboard over a serve stats endpoint *)

module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                   *)
(* ------------------------------------------------------------------ *)

let version_arg =
  let doc = "Engine version: 1.0, 2.0, 3.0, dev, or <v>-fixed." in
  Arg.(value & opt string "3.0-fixed" & info [ "e"; "engine" ] ~docv:"VERSION" ~doc)

(* Exit codes: 0 = proved, 1 = refuted, 2 = inconclusive, 3 = internal
   or usage error. *)

let config_of_version v =
  match Engine.Versions.find v with
  | Some cfg -> cfg
  | None ->
      Printf.eprintf "unknown engine version %s\n" v;
      exit 3

let zone_file_arg =
  let doc = "Zone file (master-file format with \\$ORIGIN). Defaults to the built-in reference zone." in
  Arg.(value & opt (some file) None & info [ "z"; "zone" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "Seed for generated zones." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let load_zone = function
  | None -> Spec.Fixtures.reference_zone
  | Some file -> (
      let ic = open_in file in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      match Dns.Zonefile.parse text with
      | Ok z ->
          (match Zone.validate z with
          | [] -> z
          | errs ->
              List.iter
                (fun e -> Format.eprintf "zone error: %a@." Zone.pp_error e)
                errs;
              exit 3)
      | Error m ->
          Printf.eprintf "cannot parse %s: %s\n" file m;
          exit 3)

let qtype_arg =
  let parse s =
    match Rr.rtype_of_string (String.uppercase_ascii s) with
    | Some t -> Ok t
    | None -> Error (`Msg ("unknown query type " ^ s))
  in
  let print fmt t = Format.pp_print_string fmt (Rr.rtype_to_string t) in
  Arg.conv (parse, print)

let qtypes_arg =
  let doc = "Query types to verify (comma separated)." in
  Arg.(
    value
    & opt (list qtype_arg) [ Rr.A; Rr.MX; Rr.NS ]
    & info [ "t"; "qtypes" ] ~docv:"TYPES" ~doc)

(* ------------------------------------------------------------------ *)
(* Fault injection flags (shared by verify and batch)                 *)
(* ------------------------------------------------------------------ *)

let fault_seed_arg =
  let doc =
    "Arm the deterministic fault plan the chaos harness samples for \
     $(docv) — the exact replay knob for a plan `dnsv chaos' reports."
  in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let fault_plan_arg =
  let doc =
    "Arm an explicit fault plan: comma-separated \
     $(i,site):$(i,after)[:persistent] entries, e.g. \
     solver-unknown:3,cache-corrupt:1:persistent. Sites are the \
     Faultinject sites (solver-unknown, summarize-raise, \
     summary-invalid, exec-fuel, clock-overrun, cache-corrupt, \
     journal-torn, store-corrupt, store-stale, store-lock-held, \
     conflict-corrupt, wire-garble, wire-truncate, serve-overload, \
     obsv-sink-fail)."
  in
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"PLAN" ~doc)

let apply_faults fault_seed fault_plan =
  (match fault_seed with
  | None -> ()
  | Some s -> Dnsv.Chaos.arm_plan (Dnsv.Chaos.plan_of_seed s));
  match fault_plan with
  | None -> ()
  | Some spec ->
      String.split_on_char ',' spec
      |> List.iter (fun entry ->
             let fail () =
               Printf.eprintf
                 "bad --fault-plan entry %S (want site:after[:persistent])\n"
                 entry;
               exit 3
             in
             match String.split_on_char ':' entry with
             | site :: after :: rest -> (
                 let persistent =
                   match rest with
                   | [] -> false
                   | [ "persistent" ] -> true
                   | _ -> fail ()
                 in
                 match
                   (Faultinject.site_of_string site, int_of_string_opt after)
                 with
                 | Some s, Some n when n >= 1 ->
                     Faultinject.arm ~persistent ~after:n s
                 | _ -> fail ())
             | _ -> fail ())

(* ------------------------------------------------------------------ *)
(* Persistent-store flags (shared by verify and batch)                *)
(* ------------------------------------------------------------------ *)

let store_dir_arg =
  let doc =
    "Persistent verification store: solver results, module summaries, \
     layer verdicts and whole query-type reports are kept in $(docv) \
     under content-hash fingerprints and reused across runs, so \
     re-verifying after an edit re-derives only the edit's cone of \
     influence. Served entries are re-validated against their \
     certificates; a corrupt, stale or locked store degrades to fresh \
     work, never to a wrong verdict."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let no_store_arg =
  let doc = "Ignore --store: run without the persistent store." in
  Arg.(value & flag & info [ "no-store" ] ~doc)

(* Open the persistent store (if requested) around [f]. A directory
   held by a live writer opens read-only; opening never fails the run. *)
let with_store store_dir no_store (f : Store.t option -> 'a) : 'a =
  match store_dir with
  | Some dir when not no_store ->
      let st = Store.open_ dir in
      Fun.protect
        ~finally:(fun () -> Store.close st)
        (fun () -> f (Some st))
  | _ -> f None

(* ------------------------------------------------------------------ *)
(* Static-analysis flags (shared by verify and batch)                 *)
(* ------------------------------------------------------------------ *)

let no_analysis_arg =
  let doc =
    "Disable the static analysis: the symbolic executor forks and asks \
     the solver at every branch, discharging nothing statically."
  in
  Arg.(value & flag & info [ "no-analysis" ] ~doc)

let distrust_analysis_arg =
  let doc =
    "Run the analysis but distrust it: every solver call is still made \
     and each static claim is cross-checked against the certified \
     solver (the chaos-soak mode). Mismatches are counted under \
     analysis.crosscheck_mismatch and the solver's answer wins."
  in
  Arg.(value & flag & info [ "distrust-analysis" ] ~doc)

let analysis_of_flags no_analysis distrust =
  match (no_analysis, distrust) with
  | true, true ->
      Printf.eprintf "--no-analysis and --distrust-analysis conflict\n";
      exit 3
  | true, false -> Analysis.Off
  | false, true -> Analysis.Distrust
  | false, false -> Analysis.Trust

(* ------------------------------------------------------------------ *)
(* Tracing (shared by verify, batch and chaos)                        *)
(* ------------------------------------------------------------------ *)

let trace_arg =
  let doc =
    "Record a structured trace of the run and write it to $(docv) as \
     Chrome trace_event JSON: spans for every pipeline phase plus the \
     run's metrics (counters and histograms). Load it in \
     chrome://tracing / Perfetto, or render it with `dnsv report'."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Run [f] under a recording sink and write spans + this run's metrics
   delta to [path] once it returns. Only the successful return writes a
   file: every subcommand exits through its verdict printing after [f],
   and a crashed run has nothing trustworthy to export. *)
let with_trace (path : string option) (f : unit -> 'a) : 'a =
  match path with
  | None -> f ()
  | Some path ->
      let m0 = Trace.Metrics.snapshot () in
      let v, forest = Trace.recording f in
      let metrics = Trace.Metrics.diff (Trace.Metrics.snapshot ()) m0 in
      Trace.write_chrome ~metrics ~path forest;
      v

(* ------------------------------------------------------------------ *)
(* verify                                                             *)
(* ------------------------------------------------------------------ *)

let deadline_arg =
  let doc = "Wall-clock deadline in seconds for the whole verification." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let solver_steps_arg =
  let doc = "Maximum number of solver calls before giving up." in
  Arg.(value & opt (some int) None & info [ "solver-steps" ] ~docv:"N" ~doc)

let max_paths_arg =
  let doc = "Maximum number of symbolic execution forks before giving up." in
  Arg.(value & opt (some int) None & info [ "max-paths" ] ~docv:"N" ~doc)

let retries_arg =
  let doc =
    "Retry inconclusive checks up to $(docv) times under escalated \
     (geometrically growing) budgets."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Verify query types in parallel on $(docv) worker domains. Each \
     worker gets its own solver state and a clone of the budget; \
     verdicts are identical to the sequential run."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let verify_cmd =
  let run version zone_file qtypes inline no_layers deadline solver_steps
      max_paths retries jobs no_analysis distrust store_dir no_store fault_seed
      fault_plan trace =
    let cfg = config_of_version version in
    let zone = load_zone zone_file in
    let analysis = analysis_of_flags no_analysis distrust in
    apply_faults fault_seed fault_plan;
    let mode =
      if inline then Refine.Check.Inline_all else Refine.Check.With_summaries
    in
    let budget =
      Budget.create ?deadline_s:deadline ?solver_steps ?max_paths ()
    in
    let verdict =
      try
        with_store store_dir no_store (fun store ->
            with_trace trace (fun () ->
                Dnsv.Pipeline.verify ~qtypes ~mode
                  ~check_layers:(not no_layers) ~budget ~retries ~jobs
                  ~analysis ?store cfg zone))
      with e ->
        Printf.eprintf "internal error: %s\n" (Printexc.to_string e);
        exit 3
    in
    print_string (Dnsv.Pipeline.verdict_to_string verdict);
    match Dnsv.Pipeline.status verdict with
    | Budget.Proved -> exit 0
    | Budget.Refuted _ -> exit 1
    | Budget.Inconclusive (Budget.Internal_error _) -> exit 3
    | Budget.Inconclusive _ -> exit 2
  in
  let inline =
    Arg.(value & flag & info [ "inline" ] ~doc:"Inline all layers instead of summarizing.")
  in
  let no_layers =
    Arg.(value & flag & info [ "no-layers" ] ~doc:"Skip the dependency-layer checks.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify an engine version against the top-level specification"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 on a full proof, 1 when a counterexample was found, 2 when \
              the result is inconclusive (budget exhausted, solver unknowns, \
              summary failure), 3 on internal or usage errors.";
         ])
    Term.(
      const run $ version_arg $ zone_file_arg $ qtypes_arg $ inline $ no_layers
      $ deadline_arg $ solver_steps_arg $ max_paths_arg $ retries_arg
      $ jobs_arg $ no_analysis_arg $ distrust_analysis_arg $ store_dir_arg
      $ no_store_arg $ fault_seed_arg $ fault_plan_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* batch                                                              *)
(* ------------------------------------------------------------------ *)

let batch_cmd =
  let run version origin count seed qtypes deadline solver_steps max_paths
      retries jobs no_analysis distrust store_dir no_store journal resume
      fault_seed fault_plan trace progress =
    let cfg = config_of_version version in
    let origin =
      match Name.of_string origin with
      | Ok n -> n
      | Error m ->
          Printf.eprintf "bad origin %s: %s\n" origin m;
          exit 3
    in
    let analysis = analysis_of_flags no_analysis distrust in
    apply_faults fault_seed fault_plan;
    let budget =
      Budget.create ?deadline_s:deadline ?solver_steps ?max_paths ()
    in
    (* Progress lines go to stderr (stdout carries the machine-readable
       outcome) and only with --progress: quiet by default. *)
    let t0 = Unix.gettimeofday () in
    let elapsed () = Unix.gettimeofday () -. t0 in
    let finished = ref 0
    and proved = ref 0
    and refuted = ref 0
    and inconcl = ref 0 in
    let on_start =
      if not progress then None
      else
        Some
          (fun i ->
            Printf.eprintf "[%7.2fs] zone %03d start         (%d/%d done)\n%!"
              (elapsed ()) i !finished count)
    in
    let on_item (it : Dnsv.Pipeline.batch_item) =
      let status =
        match it.Dnsv.Pipeline.bi_status with
        | Dnsv.Pipeline.Item_proved ->
            incr proved;
            "proved"
        | Dnsv.Pipeline.Item_refuted ->
            incr refuted;
            "refuted"
        | Dnsv.Pipeline.Item_inconclusive r ->
            incr inconcl;
            "inconclusive " ^ Budget.reason_to_wire r
      in
      incr finished;
      if progress then
        Printf.eprintf
          "[%7.2fs] zone %03d %-13s (%d/%d done: %d proved, %d refuted, %d \
           inconclusive)%s\n\
           %!"
          (elapsed ()) it.Dnsv.Pipeline.bi_index status !finished count !proved
          !refuted !inconcl
          (if it.Dnsv.Pipeline.bi_resumed then " (resumed)" else "")
    in
    let r =
      try
        with_store store_dir no_store (fun store ->
            with_trace trace (fun () ->
                Dnsv.Pipeline.verify_batch_run ~qtypes ~count ~seed ~budget
                  ~retries ~jobs ~analysis ?store ?journal ~resume ?on_start
                  ~on_item cfg origin))
      with
      | Failure m ->
          Printf.eprintf "%s\n" m;
          exit 3
      | e ->
          Printf.eprintf "internal error: %s\n" (Printexc.to_string e);
          exit 3
    in
    (match r.Dnsv.Pipeline.br_outcome with
    | Some (Dnsv.Pipeline.All_clean n) ->
        Printf.printf "batch: all clean (%d zones)\n" n
    | Some (Dnsv.Pipeline.Failed { zone_index; verdict }) ->
        Printf.printf "batch: FAILED at zone %d\n" zone_index;
        print_string (Dnsv.Pipeline.verdict_to_string verdict)
    | Some (Dnsv.Pipeline.Partial { zones_done; inconclusive_zones; reason })
      ->
        Printf.printf "batch: partial, %d proved, %d inconclusive (%s)\n"
          zones_done inconclusive_zones
          (Budget.reason_to_string reason)
    | None -> Printf.printf "batch: replayed from finalized journal\n");
    Printf.printf "fingerprint crc32=%08lx over %d item(s)%s%s\n"
      (Journal.crc32 r.Dnsv.Pipeline.br_fingerprint)
      (List.length r.Dnsv.Pipeline.br_items)
      (if r.Dnsv.Pipeline.br_resumed_items > 0 then
         Printf.sprintf ", %d resumed" r.Dnsv.Pipeline.br_resumed_items
       else "")
      (if r.Dnsv.Pipeline.br_dropped_bytes > 0 then
         Printf.sprintf ", %d torn byte(s) truncated"
           r.Dnsv.Pipeline.br_dropped_bytes
       else "");
    (* Worst outcome over the items decides the exit code. *)
    let any p = List.exists p r.Dnsv.Pipeline.br_items in
    if
      any (fun it ->
          match it.Dnsv.Pipeline.bi_status with
          | Dnsv.Pipeline.Item_refuted -> true
          | _ -> false)
    then exit 1
    else if
      any (fun it ->
          match it.Dnsv.Pipeline.bi_status with
          | Dnsv.Pipeline.Item_inconclusive (Budget.Internal_error _) -> true
          | _ -> false)
    then exit 3
    else if
      any (fun it ->
          match it.Dnsv.Pipeline.bi_status with
          | Dnsv.Pipeline.Item_inconclusive _ -> true
          | _ -> false)
    then exit 2
    else exit 0
  in
  let origin_arg =
    Arg.(
      value & opt string "gen.example"
      & info [ "o"; "origin" ] ~docv:"NAME" ~doc:"Origin for generated zones.")
  in
  let count_arg =
    Arg.(
      value & opt int 10
      & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of generated zones.")
  in
  let journal_arg =
    let doc =
      "Write-ahead journal: each completed zone verdict is appended and \
       flushed before the next zone starts, so a killed run can be \
       resumed with --resume losing at most the zone in flight."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume from the journal: replay its intact records without \
       re-verifying them, truncate any torn tail, and continue from the \
       first unrecorded zone. Fails if the journal was written by a \
       different workload (engine version, origin, count, seed, query \
       types or retry policy)."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let progress_arg =
    let doc =
      "Report per-zone start/finish lines with running counts and \
       elapsed time on stderr. Quiet by default."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Verify a batch of generated zone configurations, optionally \
          journaled and resumable"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 when every zone proved clean, 1 when a zone was refuted, 2 \
              when any zone was inconclusive, 3 on internal or usage errors \
              (including a journal that cannot be resumed).";
         ])
    Term.(
      const run $ version_arg $ origin_arg $ count_arg $ seed_arg $ qtypes_arg
      $ deadline_arg $ solver_steps_arg $ max_paths_arg $ retries_arg
      $ jobs_arg $ no_analysis_arg $ distrust_analysis_arg $ store_dir_arg
      $ no_store_arg $ journal_arg $ resume_arg $ fault_seed_arg
      $ fault_plan_arg $ trace_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                              *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let run seed plans trace =
    let o =
      try with_trace trace (fun () -> Dnsv.Chaos.run ~seed ~plans ())
      with Failure m ->
        Printf.eprintf "chaos: %s\n" m;
        exit 3
    in
    Format.printf "%a@." Dnsv.Chaos.pp o;
    exit (if Dnsv.Chaos.ok o then 0 else 1)
  in
  let plans_arg =
    Arg.(
      value & opt int 200
      & info [ "plans" ] ~docv:"N" ~doc:"Number of seeded fault plans to run.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Seeded fault-injection soak: assert the soundness monotone and \
          journal kill-and-resume fidelity"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 when every plan upheld the soundness monotone (faults may \
              degrade a verdict to inconclusive, never flip it) and every \
              killed journal resumed byte-identically; 1 when any plan \
              violated either property; 3 on harness errors.";
         ])
    Term.(const run $ seed_arg $ plans_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* report                                                             *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let run file top depth validate json =
    match Trace.Report.load file with
    | Error m ->
        Printf.eprintf "cannot read trace %s: %s\n" file m;
        exit 3
    | Ok r ->
        if json then print_endline (Trace.Report.to_json r)
        else print_string (Trace.Report.render ~top ~depth r);
        if validate then begin
          (* The CI well-formedness gate: the trace must contain at
             least one span for every registered refinement layer. *)
          let layer_spans = Trace.Report.find_spans r ~name:"layer" in
          let covered name =
            List.exists
              (fun (sp : Trace.Report.rspan) ->
                List.assoc_opt "layer" sp.Trace.Report.r_attrs = Some name)
              layer_spans
          in
          let missing =
            List.filter_map
              (fun (name, _) -> if covered name then None else Some name)
              Refine.Layers.specs
          in
          match missing with
          | [] ->
              Printf.printf "validate: spans present for all %d layers\n"
                (List.length Refine.Layers.specs)
          | names ->
              Printf.eprintf "validate: no layer span for: %s\n"
                (String.concat ", " names);
              exit 1
        end
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file written by --trace.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Show the $(docv) slowest spans.")
  in
  let depth_arg =
    Arg.(
      value & opt int 3
      & info [ "depth" ] ~docv:"D"
          ~doc:"Render the span tree down to depth $(docv).")
  in
  let validate_arg =
    let doc =
      "Fail (exit 1) unless the trace contains a span for every \
       registered refinement layer — the CI well-formedness gate."
    in
    Arg.(value & flag & info [ "validate-layers" ] ~doc)
  in
  let json_arg =
    let doc =
      "Emit the machine-readable report instead: per-phase wall/count \
       plus counters and histograms (quantiles carry their \
       power-of-two-bucket error bound), one JSON object — the same \
       consumer shape `dnsv top --once --json' scrapes."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a --trace file as a human-readable profile: per-phase \
          wall/count table, span tree, slowest spans, counters and \
          histograms (or --json for the machine-readable twin)")
    Term.(const run $ file_arg $ top_arg $ depth_arg $ validate_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* layers                                                             *)
(* ------------------------------------------------------------------ *)

let layers_cmd =
  let run version =
    let cfg = config_of_version version in
    let prog = Engine.Versions.compiled cfg in
    let reports = Refine.Layers.check_all prog in
    List.iter
      (fun (r : Refine.Layers.layer_report) ->
        Printf.printf "%-18s code=%3d spec=%3d  %.3fs  %s\n"
          r.Refine.Layers.layer r.Refine.Layers.code_paths
          r.Refine.Layers.spec_paths r.Refine.Layers.elapsed
          (if Refine.Layers.layer_ok r then "ok"
           else String.concat "; " r.Refine.Layers.mismatches))
      reports;
    if List.for_all Refine.Layers.layer_ok reports then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "layers"
       ~doc:"Verify the dependency layers against their manual specifications")
    Term.(const run $ version_arg)

(* ------------------------------------------------------------------ *)
(* summarize                                                          *)
(* ------------------------------------------------------------------ *)

let summarize_cmd =
  let run zone_file =
    let zone =
      match zone_file with
      | None -> Spec.Fixtures.figure11_zone
      | some -> load_zone some
    in
    Dnsv.Table1.print (Dnsv.Table1.run ~zone ())
  in
  Cmd.v
    (Cmd.info "summarize"
       ~doc:"Summarize TreeSearch over a concrete domain tree (Table 1)")
    Term.(const run $ zone_file_arg)

(* ------------------------------------------------------------------ *)
(* bugs                                                               *)
(* ------------------------------------------------------------------ *)

let bugs_cmd =
  let run () =
    Printf.printf "%-3s %-8s %-20s %s\n" "#" "Version" "Classification"
      "Description";
    List.iter
      (fun (i : Engine.Bugs.info) ->
        Printf.printf "%-3d %-8s %-20s %s\n" i.Engine.Bugs.index
          i.Engine.Bugs.version i.Engine.Bugs.classification
          i.Engine.Bugs.description)
      Engine.Bugs.table2
  in
  Cmd.v
    (Cmd.info "bugs" ~doc:"List the Table-2 bug registry")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* zonegen                                                            *)
(* ------------------------------------------------------------------ *)

let zonegen_cmd =
  let run seed origin =
    let origin = Name.of_string_exn origin in
    let zone = Dns.Zonegen.generate ~seed origin in
    print_string (Dns.Zonefile.render zone)
  in
  let origin =
    Arg.(
      value & opt string "gen.example"
      & info [ "o"; "origin" ] ~docv:"NAME" ~doc:"Zone origin.")
  in
  Cmd.v
    (Cmd.info "zonegen" ~doc:"Generate a random zone configuration (§6.5)")
    Term.(const run $ seed_arg $ origin)

(* ------------------------------------------------------------------ *)
(* replay                                                             *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let run version zone_file qname qtype =
    let cfg = config_of_version version in
    let zone = load_zone zone_file in
    let q = Message.query (Name.of_string_exn qname) qtype in
    Format.printf "query: %a@.@." Message.pp_query q;
    (match Engine.Versions.run cfg zone q with
    | Engine.Versions.Response r ->
        Format.printf "engine %s:@.%a@." version Message.pp_response r
    | Engine.Versions.Engine_panic m ->
        Format.printf "engine %s: PANIC (%s)@." version m);
    Format.printf "@.specification:@.%a@." Message.pp_response
      (Spec.Rrlookup.resolve zone q)
  in
  let qname =
    Arg.(
      required
      & opt (some string) None
      & info [ "q"; "qname" ] ~docv:"NAME" ~doc:"Query name.")
  in
  let qtype =
    Arg.(value & opt qtype_arg Rr.A & info [ "qtype" ] ~docv:"TYPE" ~doc:"Query type.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Run one concrete query on the engine and the specification")
    Term.(const run $ version_arg $ zone_file_arg $ qname $ qtype)

(* ------------------------------------------------------------------ *)
(* source                                                             *)
(* ------------------------------------------------------------------ *)

let source_cmd =
  let run version ir =
    let cfg = config_of_version version in
    if ir then
      print_string
        (Minir.Pretty.program_to_string (Engine.Versions.compiled cfg))
    else
      print_string
        (Golite.Print.program_to_string (Engine.Builder.golite_program cfg))
  in
  let ir =
    Arg.(
      value & flag
      & info [ "ir" ] ~doc:"Print the compiled Minir IR instead of the Golite source.")
  in
  Cmd.v
    (Cmd.info "source"
       ~doc:"Print an engine version's Golite source (or its compiled IR)")
    Term.(const run $ version_arg $ ir)

(* ------------------------------------------------------------------ *)
(* rawname                                                            *)
(* ------------------------------------------------------------------ *)

let rawname_cmd =
  let run () =
    let r = Refine.Raw_name.check () in
    Refine.Raw_name.print r;
    if Refine.Raw_name.ok r then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "rawname"
       ~doc:
         "Verify the byte-level compareRaw against the word-level compareAbs \
          (the paper's section 6.3)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* lint                                                               *)
(* ------------------------------------------------------------------ *)

(* Read a baseline file (the --json output of a previous run) into
   per-version (errors, warnings, infos) budgets. *)
let lint_baseline_budgets path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Trace.Json.parse text with
  | Error m ->
      Printf.eprintf "cannot parse baseline %s: %s\n" path m;
      exit 3
  | Ok j -> (
      let num name o =
        match Trace.Json.member name o with
        | Some (Trace.Json.Num f) -> int_of_float f
        | _ -> 0
      in
      match Trace.Json.member "versions" j with
      | Some (Trace.Json.Arr vs) ->
          List.filter_map
            (fun v ->
              match Trace.Json.member "version" v with
              | Some (Trace.Json.Str name) ->
                  let counts =
                    match Trace.Json.member "lint" v with
                    | Some l -> (
                        match Trace.Json.member "counts" l with
                        | Some c -> c
                        | None -> Trace.Json.Null)
                    | None -> Trace.Json.Null
                  in
                  Some
                    ( name,
                      (num "error" counts, num "warning" counts,
                       num "info" counts) )
              | _ -> None)
            vs
      | _ ->
          Printf.eprintf "baseline %s: no \"versions\" array\n" path;
          exit 3)

(* Atomic baseline rewrite: the new content lands under a temp name in
   the same directory, then renames over the old file, so a reader (or
   a crash) sees either the old baseline or the new one, never a torn
   mix. *)
let write_file_atomic path text =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".lint_baseline" ".tmp" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let oc = open_out_bin tmp in
      output_string oc text;
      close_out oc;
      Sys.rename tmp path)

let lint_cmd =
  let run engine golite json baseline update store_dir no_store =
    (* Each target: display name, program, analysis env, dead-callee
       entry points. Engines get the full interprocedural environment
       (resolve entry facts, Layout field invariants) and `resolve` as
       the sole entry; a standalone Golite file gets the env-free
       analysis and no dead-callee class (its entry set is unknown). *)
    let targets =
      match golite with
      | Some path -> (
          let ic = open_in_bin path in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Golite.Parse.program_of_string text with
          | Error m ->
              Printf.eprintf "cannot parse %s: %s\n" path m;
              exit 3
          | Ok ast -> (
              match Golite.Compile.compile ast with
              | prog -> [ (Filename.basename path, prog, None, None) ]
              | exception e ->
                  Printf.eprintf "cannot compile %s: %s\n" path
                    (Printexc.to_string e);
                  exit 3))
      | None ->
          let cfgs =
            match engine with
            | None -> Engine.Versions.all
            | Some v -> [ config_of_version v ]
          in
          List.map
            (fun (cfg : Engine.Builder.config) ->
              ( cfg.Engine.Builder.version,
                Engine.Versions.compiled cfg,
                Some (Refine.Check.engine_env ()),
                Some [ "resolve" ] ))
            cfgs
    in
    with_store store_dir no_store @@ fun store ->
    let results =
      List.map
        (fun (name, prog, env, entries) ->
          let with_hooks f =
            match store with
            | None -> f ()
            | Some st ->
                Store.with_analysis st
                  ~cone_of:(fun fn -> Store.Fingerprint.cone_fp prog fn)
                  f
          in
          with_hooks @@ fun () ->
          let fs = Analysis.Lint.run ?env ?entries prog in
          let s = Analysis.summarize ?env prog in
          let hits, misses = Analysis.store_traffic s in
          let stats = Analysis.interproc_stats s in
          if store <> None then
            Printf.eprintf "lint %s: summary store hits %d, misses %d\n%!"
              name hits misses;
          (name, fs, stats))
        targets
    in
    let json_doc () =
      let b = Buffer.create 1024 in
      Buffer.add_string b "{\"versions\": [";
      List.iteri
        (fun i (v, fs, stats) ->
          let interproc =
            String.concat ", "
              (List.map
                 (fun (k, n) -> Printf.sprintf "\"%s\": %d" k n)
                 stats)
          in
          Buffer.add_string b
            (Printf.sprintf
               "%s\n {\"version\": \"%s\", \"lint\": %s, \"interproc\": {%s}}"
               (if i = 0 then "" else ",")
               v (Analysis.Lint.to_json fs) interproc))
        results;
      Buffer.add_string b "\n]}\n";
      Buffer.contents b
    in
    if update then begin
      match baseline with
      | None ->
          Printf.eprintf "--update-baseline requires --baseline FILE\n";
          exit 3
      | Some path ->
          write_file_atomic path (json_doc ());
          Printf.eprintf "lint: baseline %s updated\n" path;
          exit 0
    end;
    if json then print_string (json_doc ())
    else
      List.iter
        (fun (v, fs, _) ->
          let e, w, n = Analysis.Lint.counts fs in
          Printf.printf "engine %-9s %d error(s), %d warning(s), %d info\n" v e
            w n;
          List.iter
            (fun f -> Format.printf "  %a@." Analysis.Lint.pp_finding f)
            fs)
        results;
    let results = List.map (fun (v, fs, _) -> (v, fs)) results in
    match baseline with
    | Some path -> (
        let budgets = lint_baseline_budgets path in
        let regressions =
          List.concat_map
            (fun (v, fs) ->
              let e, w, n = Analysis.Lint.counts fs in
              let be, bw, bn =
                Option.value ~default:(0, 0, 0) (List.assoc_opt v budgets)
              in
              let over sev cur bud =
                if cur > bud then
                  [
                    Printf.sprintf "engine %s: %d %s finding(s), baseline %d" v
                      cur sev bud;
                  ]
                else []
              in
              over "error" e be @ over "warning" w bw @ over "info" n bn)
            results
        in
        match regressions with
        | [] ->
            Printf.eprintf "lint: within baseline %s\n" path;
            exit 0
        | rs ->
            List.iter (fun r -> Printf.eprintf "lint regression: %s\n" r) rs;
            exit 1)
    | None ->
        let errors =
          List.exists
            (fun (_, fs) ->
              let e, _, _ = Analysis.Lint.counts fs in
              e > 0)
            results
        in
        exit (if errors then 1 else 0)
  in
  let engine_opt_arg =
    let doc =
      "Lint only engine $(docv) instead of every bundled version."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "engine" ] ~docv:"VERSION" ~doc)
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit machine-readable JSON (per-version counts and findings) on \
             stdout instead of text.")
  in
  let baseline_arg =
    let doc =
      "Gate against a checked-in baseline (the --json output of a previous \
       run): exit 1 when any version's error, warning or info count exceeds \
       the baseline's. With --update-baseline, the file to (re)write."
    in
    Arg.(
      value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let golite_arg =
    let doc =
      "Lint a standalone Golite source file instead of the bundled engines. \
       The interprocedural summaries still apply; the dead-callee class is \
       off (a lone file declares no entry points)."
    in
    Arg.(value & opt (some file) None & info [ "golite" ] ~docv:"FILE" ~doc)
  in
  let update_arg =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:
            "Rewrite the --baseline file with this run's findings \
             (atomically: temp file + rename) and exit 0.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze the bundled engine versions: dead blocks, \
          reachable panics, use-before-init loads, dead stores, division by \
          zero, nil dereferences, guaranteed-panic call chains, dead \
          callees, ill-typed calls"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "Without --baseline: 0 when no Error-severity findings, 1 \
              otherwise. With --baseline: 0 when every version's counts are \
              within the baseline, 1 on any regression. 3 on usage errors.";
           `S "STORE";
           `P
             "With --store DIR, interprocedural function summaries are \
              persisted under cone fingerprints: re-linting after an edit \
              recomputes only the edited function's cone of influence \
              (hit/miss counts go to stderr).";
         ])
    Term.(
      const run $ engine_opt_arg $ golite_arg $ json_arg $ baseline_arg
      $ update_arg $ store_dir_arg $ no_store_arg)

(* ------------------------------------------------------------------ *)
(* store                                                              *)
(* ------------------------------------------------------------------ *)

let store_dir_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Persistent store directory.")

(* The deep checks know every entry kind the pipeline frames: solver
   results and summaries are checked by the store itself, layer
   verdicts and query-type reports by the modules that framed them. *)
let store_check ~key ~payload =
  match Dnsv.Pipeline.store_entry_check ~key ~payload with
  | Some _ as r -> r
  | None -> Refine.Layers.store_entry_check ~key ~payload

let store_stat_cmd =
  let run dir =
    if not (Sys.file_exists dir) then begin
      Printf.eprintf "no store at %s\n" dir;
      exit 3
    end;
    Format.printf "%a@." Store.pp_stat (Store.stat dir)
  in
  Cmd.v
    (Cmd.info "stat" ~doc:"Summarize a store: live entries by kind, bytes")
    Term.(const run $ store_dir_pos)

let store_gc_cmd =
  let run dir =
    let st = Store.open_ dir in
    let r = Store.gc st in
    Store.close st;
    match r with
    | Ok n ->
        Printf.printf "store gc: compacted to %d live entr%s\n" n
          (if n = 1 then "y" else "ies")
    | Error m ->
        Printf.eprintf "store gc: %s\n" m;
        exit 3
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Compact the store to its live entries with an atomic \
          tmp-and-rename rewrite")
    Term.(const run $ store_dir_pos)

let store_fsck_cmd =
  let run dir =
    if not (Sys.file_exists dir) then begin
      Printf.eprintf "no store at %s\n" dir;
      exit 3
    end;
    let r = Store.fsck ~check:store_check dir in
    Format.printf "%a@." Store.pp_fsck r;
    exit (if Store.fsck_clean r then 0 else 1)
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check every frame and deep-check every live entry; truncate a \
          torn tail"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 when the store is clean (a repaired torn tail — the \
              expected crash signature — still counts as clean), 1 when \
              any live entry is structurally corrupt or the header does \
              not match, 3 on usage errors.";
         ])
    Term.(const run $ store_dir_pos)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Inspect, compact and check the persistent verification store \
          written by --store")
    [ store_stat_cmd; store_gc_cmd; store_fsck_cmd ]

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

let port_arg =
  let doc = "UDP port on 127.0.0.1 (0 picks a free port)." in
  Arg.(value & opt int 5300 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let run version zone_file port query_deadline max_queries stats_port qlog
      qlog_sample seed window_s windows p99_limit servfail_limit fault_seed
      fault_plan trace =
    let cfg = config_of_version version in
    let zone = load_zone zone_file in
    apply_faults fault_seed fault_plan;
    let identity =
      {
        Obsv.Expo.id_version = "dnsv 1.0.0";
        id_engine = version;
        id_zone = Name.to_string (Zone.origin zone);
      }
    in
    let server =
      Dnsv.Serve.create ~deadline_s:query_deadline ~identity ~config:cfg zone
    in
    let qlog_t =
      Option.map
        (fun path -> Obsv.Qlog.create ~path ~seed ~rate_pct:qlog_sample ())
        qlog
    in
    let windows_t =
      Obsv.Windows.create ~window_s ~windows ?p99_limit_ms:p99_limit
        ?servfail_limit ()
    in
    Dnsv.Serve.attach_obsv server
      (Obsv.sink ?qlog:qlog_t ~windows:windows_t ());
    let stats =
      Option.map (fun p -> Obsv.Endpoint.create ~port:p ()) stats_port
    in
    (* SIGTERM/SIGINT become a cooperative stop: the loop returns, the
       final snapshot and query-log tail are flushed, and we exit 0. *)
    Dnsv.Serve.clear_stop ();
    Dnsv.Serve.install_stop_signals ();
    (try
       with_trace trace (fun () ->
           Dnsv.Serve.serve_udp ?max_queries ?stats
             ~ready:(fun p ->
               Printf.eprintf "dnsv serve: zone %s, engine %s, 127.0.0.1:%d\n%!"
                 (Name.to_string (Zone.origin zone)) version p;
               match stats with
               | Some ep ->
                   Printf.eprintf "dnsv serve: stats on 127.0.0.1:%d\n%!"
                     (Obsv.Endpoint.port ep)
               | None -> ())
             ~port server)
     with e ->
       Printf.eprintf "serve: %s\n" (Printexc.to_string e);
       exit 3);
    (* Final flush: close the current SLO window, emit the whole
       registry as a last scrape-equivalent snapshot, finalize the
       query log (its CRC frame discipline makes the tail recoverable
       even without this; finalizing marks the log complete). *)
    Obsv.Windows.roll windows_t;
    prerr_string (Dnsv.Serve.exposition server `Text);
    (match qlog_t with
    | Some q ->
        Printf.eprintf "qlog: %d record(s) in %s\n" (Obsv.Qlog.logged q)
          (Obsv.Qlog.path q);
        Obsv.Qlog.close q
    | None -> ());
    (match stats with Some ep -> Obsv.Endpoint.close ep | None -> ());
    Format.eprintf "%a@." Dnsv.Serve.pp_stats (Dnsv.Serve.stats ());
    exit 0
  in
  let query_deadline_arg =
    let doc = "Per-query wall-clock budget in seconds; an overrun degrades \
               that query to SERVFAIL." in
    Arg.(value & opt float 0.25 & info [ "query-deadline" ] ~docv:"SECS" ~doc)
  in
  let max_queries_arg =
    let doc = "Stop after receiving $(docv) datagrams (for scripted runs); \
               serves forever by default." in
    Arg.(value & opt (some int) None & info [ "max-queries" ] ~docv:"N" ~doc)
  in
  let stats_port_arg =
    let doc =
      "Serve a live stats endpoint on 127.0.0.1:$(docv) (0 picks a free \
       port): a UDP control socket answering any datagram with Prometheus \
       text exposition (or JSON when the request starts with `json') of \
       the full metrics registry, server identity and the rolling SLO \
       windows — scrapeable under load, `dnsv top' renders it."
    in
    Arg.(value & opt (some int) None & info [ "stats-port" ] ~docv:"PORT" ~doc)
  in
  let qlog_arg =
    let doc =
      "Write a sampled query log to $(docv): one CRC-framed record per \
       sampled query (index, id, qname/qtype, disposition, rcode, \
       degradation reason, wall latency, budget). A torn tail loses at \
       most one record, and a log failure can never affect an answer."
    in
    Arg.(value & opt (some string) None & info [ "qlog" ] ~docv:"FILE" ~doc)
  in
  let qlog_sample_arg =
    let doc =
      "Query-log sample rate in percent. Sampling is a pure function of \
       (--seed, query index), so the same seed replays the same sampled \
       index set."
    in
    Arg.(value & opt int 10 & info [ "qlog-sample" ] ~docv:"PCT" ~doc)
  in
  let window_s_arg =
    let doc = "Nominal rolling-SLO window length in seconds." in
    Arg.(value & opt float 10.0 & info [ "window-s" ] ~docv:"SECS" ~doc)
  in
  let windows_arg =
    let doc = "Rolling-SLO ring capacity (windows kept)." in
    Arg.(value & opt int 60 & info [ "windows" ] ~docv:"N" ~doc)
  in
  let p99_limit_arg =
    let doc =
      "SLO threshold: emit an slo.alert trace instant when a closed \
       window's p99 latency exceeds $(docv) milliseconds."
    in
    Arg.(value & opt (some float) None & info [ "p99-limit" ] ~docv:"MS" ~doc)
  in
  let servfail_limit_arg =
    let doc =
      "SLO threshold: emit an slo.alert trace instant when a closed \
       window's SERVFAIL rate exceeds $(docv) (a 0..1 fraction)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "servfail-limit" ] ~docv:"FRACTION" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Answer RFC 1035 UDP queries over a verified engine version — \
          crash-proof by contract, observable by default"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Binds 127.0.0.1 and answers standard queries with the chosen \
              engine. Degradations, never crashes: garbage datagrams get \
              FORMERR, unsupported opcodes NOTIMP, engine panics and \
              per-query budget overruns SERVFAIL (with the machine-readable \
              reason in the trace), oversized answers are truncated with TC. \
              Responses and headerless fragments are dropped to avoid reply \
              loops. The wire fault sites (wire-garble, wire-truncate, \
              serve-overload, obsv-sink-fail) can be armed with \
              --fault-seed/--fault-plan to rehearse the degradations.";
           `P
             "Operations observability rides strictly off the answer path: \
              --stats-port serves a live Prometheus/JSON exposition, --qlog \
              writes a seeded sampled query log through the CRC journal \
              framing, and rolling SLO windows derive per-window QPS, \
              latency percentiles and SERVFAIL rate (with threshold alerts \
              as typed trace instants). On SIGTERM/SIGINT the loop stops \
              cooperatively, flushes a final metrics snapshot and the \
              query-log tail, and exits 0.";
         ])
    Term.(
      const run $ version_arg $ zone_file_arg $ port_arg $ query_deadline_arg
      $ max_queries_arg $ stats_port_arg $ qlog_arg $ qlog_sample_arg
      $ seed_arg $ window_s_arg $ windows_arg $ p99_limit_arg
      $ servfail_limit_arg $ fault_seed_arg $ fault_plan_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* loadgen                                                            *)
(* ------------------------------------------------------------------ *)

let loadgen_cmd =
  let run version zone_file host port queries malformed seed timeout inproc
      trace =
    let zone = load_zone zone_file in
    let mix =
      { Dnsv.Loadgen.queries; malformed_pct = malformed; seed }
    in
    let r =
      try
        with_trace trace (fun () ->
            if inproc then begin
              let cfg = config_of_version version in
              let server = Dnsv.Serve.create ~config:cfg zone in
              Dnsv.Loadgen.run ~zone (Dnsv.Loadgen.inproc server) mix
            end
            else begin
              let inet =
                try Unix.inet_addr_of_string host
                with Failure _ ->
                  Printf.eprintf "bad host %s\n" host;
                  exit 3
              in
              Dnsv.Loadgen.with_udp ~timeout_s:timeout
                (Unix.ADDR_INET (inet, port))
                (fun transport -> Dnsv.Loadgen.run ~zone transport mix)
            end)
      with e ->
        Printf.eprintf "loadgen: %s\n" (Printexc.to_string e);
        exit 3
    in
    Format.printf "%a@." Dnsv.Loadgen.pp r;
    exit (if Dnsv.Loadgen.all_answered r then 0 else 1)
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let queries_arg =
    Arg.(
      value & opt int 500
      & info [ "n"; "queries" ] ~docv:"N" ~doc:"Number of datagrams to send.")
  in
  let malformed_arg =
    let doc =
      "Percentage of datagrams that are seeded garbage (header intact, QR \
       clear, body malformed): the server must answer them FORMERR, not \
       drop them or die."
    in
    Arg.(value & opt int 10 & info [ "malformed" ] ~docv:"PCT" ~doc)
  in
  let timeout_arg =
    let doc = "Per-query receive timeout in seconds." in
    Arg.(value & opt float 0.5 & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let inproc_arg =
    let doc =
      "Skip the network: run the mix straight through the serve loop of an \
       in-process server built from --engine and --zone."
    in
    Arg.(value & flag & info [ "inproc" ] ~doc)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Fire a seeded query mix (exact owners, misses, out-of-zone names, \
          malformed datagrams) at a DNS server and report answer rates, QPS \
          and latency percentiles"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 when every datagram was answered with a decodable reply \
              (malformed ones with FORMERR); 1 when any query timed out or a \
              reply failed to decode; 3 on usage errors.";
         ])
    Term.(
      const run $ version_arg $ zone_file_arg $ host_arg $ port_arg
      $ queries_arg $ malformed_arg $ seed_arg $ timeout_arg $ inproc_arg
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* wire                                                               *)
(* ------------------------------------------------------------------ *)

let wire_cmd =
  let run cases seed =
    let report = Wire.Selfcheck.run ~seed ~cases () in
    Format.printf "%a@." Wire.Selfcheck.pp report;
    exit (if Wire.Selfcheck.ok report then 0 else 1)
  in
  let cases_arg =
    Arg.(
      value & opt int 5000
      & info [ "cases" ] ~docv:"N" ~doc:"Number of seeded decoder inputs.")
  in
  Cmd.v
    (Cmd.info "wire"
       ~doc:
         "Check that the wire decoder's panic guards are discharged: replay \
          the seeded malformed-input battery and require zero escaped \
          exceptions, zero catch-all barrier hits, zero round-trip failures, \
          and every typed guard class exercised"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 when the decoder is total on the whole battery with live \
              typed guards (the wire analogue of `dnsv lint' discharging an \
              engine's panic checks); 1 otherwise.";
         ])
    Term.(const run $ cases_arg $ seed_arg)

let top_cmd =
  let module J = Trace.Json in
  (* Tolerant readers over the endpoint's JSON exposition: a missing
     field renders as its zero, never a crash — `top' must keep
     painting even if it scrapes an older server. *)
  let jget path j =
    List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some j) path
  in
  let jstr ?(default = "?") path j =
    match jget path j with Some (J.Str s) -> s | _ -> default
  in
  let jnum path j = match jget path j with Some (J.Num n) -> n | _ -> 0.0 in
  let jint path j = int_of_float (jnum path j) in
  let counter j name = jint [ "counters"; name ] j in
  let render j =
    let b = Buffer.create 2048 in
    Printf.bprintf b "dnsv top — %s  engine=%s  zone=%s\n"
      (jstr [ "identity"; "version" ] j)
      (jstr [ "identity"; "engine" ] j)
      (jstr [ "identity"; "zone" ] j);
    let served =
      List.fold_left
        (fun a n -> a + counter j ("serve." ^ n))
        0
        [ "answered"; "formerr"; "notimp"; "servfail"; "dropped" ]
    in
    Printf.bprintf b
      "totals: served=%d answered=%d servfail=%d dropped=%d | qlog \
       sampled=%d sink_failures=%d | alerts=%d scrapes=%d\n"
      served
      (counter j "serve.answered")
      (counter j "serve.servfail")
      (counter j "serve.dropped")
      (counter j "obsv.sampled")
      (counter j "obsv.sink_failures")
      (jint [ "alerts_total" ] j)
      (counter j "obsv.scrapes");
    Printf.bprintf b "%6s %8s %9s %9s %9s %9s %6s %6s  %s\n" "win" "served"
      "qps" "p50ms" "p90ms" "p99ms" "sf%" "alert" "rcodes";
    let windows =
      match jget [ "windows" ] j with Some (J.Arr ws) -> ws | _ -> []
    in
    if windows = [] then
      Buffer.add_string b "  (no closed windows yet — scrape again)\n";
    List.iter
      (fun w ->
        let pairs path =
          match jget path w with
          | Some (J.Obj kvs) ->
              List.map
                (fun (k, v) ->
                  Printf.sprintf "%s=%d" k
                    (match v with J.Num n -> int_of_float n | _ -> 0))
                kvs
          | _ -> []
        in
        let alerts =
          match jget [ "alerts" ] w with Some (J.Arr l) -> List.length l | _ -> 0
        in
        Printf.bprintf b "%6d %8d %9.0f %9.3g %9.3g %9.3g %6.2f %6d  %s\n"
          (jint [ "index" ] w) (jint [ "served" ] w) (jnum [ "qps" ] w)
          (jnum [ "p50_ms" ] w) (jnum [ "p90_ms" ] w) (jnum [ "p99_ms" ] w)
          (100.0 *. jnum [ "servfail_rate" ] w)
          alerts
          (String.concat " " (pairs [ "rcodes" ]));
        let reasons = pairs [ "reasons" ] in
        if reasons <> [] then
          Printf.bprintf b "%6s degradation reasons: %s\n" ""
            (String.concat " " reasons))
      windows;
    Buffer.contents b
  in
  let run host port once json interval timeout =
    let scrape () = Obsv.Endpoint.scrape ~timeout_s:timeout ~host ~port `Json in
    let paint first =
      match scrape () with
      | Error e ->
          Printf.eprintf "top: scrape of %s:%d failed: %s\n" host port e;
          exit 1
      | Ok body ->
          if json then print_endline body
          else (
            (match J.parse body with
            | Error e ->
                Printf.eprintf "top: endpoint returned unparseable JSON: %s\n"
                  e;
                exit 1
            | Ok j ->
                if (not once) && not first then print_string "\027[2J\027[H";
                print_string (render j));
            flush stdout)
    in
    if once then paint true
    else begin
      let first = ref true in
      while true do
        paint !first;
        first := false;
        Unix.sleepf interval
      done
    end;
    exit 0
  in
  let host_arg =
    let doc = "Stats endpoint host." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let port_arg =
    let doc = "Stats endpoint port (the serve --stats-port value)." in
    Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let once_arg =
    let doc = "Render a single snapshot and exit (for scripts and CI)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let json_arg =
    let doc =
      "Print the endpoint's raw JSON exposition instead of the table — \
       the same shape `dnsv report --json' consumers parse."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let interval_arg =
    let doc = "Refresh interval in seconds (ignored with --once)." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECS" ~doc)
  in
  let timeout_arg =
    let doc = "Per-scrape receive timeout in seconds." in
    Arg.(value & opt float 1.0 & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live per-window serving dashboard: scrape a `dnsv serve \
          --stats-port' endpoint and render the rolling SLO windows"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Scrapes the server's stats endpoint and renders identity, \
              lifetime totals and a newest-first table of closed SLO \
              windows (served, QPS, latency percentiles, SERVFAIL rate, \
              alert count, rcode mix, degradation reasons), refreshing \
              every --interval seconds. --once renders a single snapshot; \
              --json emits the raw JSON exposition for machine consumers.";
           `S Manpage.s_exit_status;
           `P "0 on success; 1 when the scrape times out or the reply does \
               not parse.";
         ])
    Term.(
      const run $ host_arg $ port_arg $ once_arg $ json_arg $ interval_arg
      $ timeout_arg)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "dnsv" ~version:"1.0.0"
      ~doc:
        "DNS-V: automated verification of an in-production DNS authoritative \
         engine"
  in
  let code =
    Cmd.eval
      (Cmd.group info
         [
           verify_cmd; batch_cmd; chaos_cmd; lint_cmd; report_cmd; layers_cmd;
           summarize_cmd; bugs_cmd; zonegen_cmd; replay_cmd; source_cmd;
           rawname_cmd; store_cmd; serve_cmd; loadgen_cmd; wire_cmd; top_cmd;
         ])
  in
  (* Fold cmdliner's cli/internal error codes (124/125) into the
     documented contract: 3 = internal or usage error. *)
  exit (if code = 124 || code = 125 then 3 else code)
