(* The dnsv command-line interface.

     dnsv verify    — verify an engine version against the top-level spec
     dnsv layers    — verify the dependency layers against manual specs
     dnsv summarize — summarize TreeSearch (Table-1 style output)
     dnsv bugs      — list the Table-2 bug registry
     dnsv zonegen   — generate random zone configurations
     dnsv replay    — run one concrete query on engine and spec *)

module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                   *)
(* ------------------------------------------------------------------ *)

let version_arg =
  let doc = "Engine version: 1.0, 2.0, 3.0, dev, or <v>-fixed." in
  Arg.(value & opt string "3.0-fixed" & info [ "e"; "engine" ] ~docv:"VERSION" ~doc)

(* Exit codes: 0 = proved, 1 = refuted, 2 = inconclusive, 3 = internal
   or usage error. *)

let config_of_version v =
  match Engine.Versions.find v with
  | Some cfg -> cfg
  | None ->
      Printf.eprintf "unknown engine version %s\n" v;
      exit 3

let zone_file_arg =
  let doc = "Zone file (master-file format with \\$ORIGIN). Defaults to the built-in reference zone." in
  Arg.(value & opt (some file) None & info [ "z"; "zone" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "Seed for generated zones." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let load_zone = function
  | None -> Spec.Fixtures.reference_zone
  | Some file -> (
      let ic = open_in file in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      match Dns.Zonefile.parse text with
      | Ok z ->
          (match Zone.validate z with
          | [] -> z
          | errs ->
              List.iter
                (fun e -> Format.eprintf "zone error: %a@." Zone.pp_error e)
                errs;
              exit 3)
      | Error m ->
          Printf.eprintf "cannot parse %s: %s\n" file m;
          exit 3)

let qtype_arg =
  let parse s =
    match Rr.rtype_of_string (String.uppercase_ascii s) with
    | Some t -> Ok t
    | None -> Error (`Msg ("unknown query type " ^ s))
  in
  let print fmt t = Format.pp_print_string fmt (Rr.rtype_to_string t) in
  Arg.conv (parse, print)

let qtypes_arg =
  let doc = "Query types to verify (comma separated)." in
  Arg.(
    value
    & opt (list qtype_arg) [ Rr.A; Rr.MX; Rr.NS ]
    & info [ "t"; "qtypes" ] ~docv:"TYPES" ~doc)

(* ------------------------------------------------------------------ *)
(* verify                                                             *)
(* ------------------------------------------------------------------ *)

let deadline_arg =
  let doc = "Wall-clock deadline in seconds for the whole verification." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)

let solver_steps_arg =
  let doc = "Maximum number of solver calls before giving up." in
  Arg.(value & opt (some int) None & info [ "solver-steps" ] ~docv:"N" ~doc)

let max_paths_arg =
  let doc = "Maximum number of symbolic execution forks before giving up." in
  Arg.(value & opt (some int) None & info [ "max-paths" ] ~docv:"N" ~doc)

let retries_arg =
  let doc =
    "Retry inconclusive checks up to $(docv) times under escalated \
     (geometrically growing) budgets."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Verify query types in parallel on $(docv) worker domains. Each \
     worker gets its own solver state and a clone of the budget; \
     verdicts are identical to the sequential run."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let verify_cmd =
  let run version zone_file qtypes inline no_layers deadline solver_steps
      max_paths retries jobs =
    let cfg = config_of_version version in
    let zone = load_zone zone_file in
    let mode =
      if inline then Refine.Check.Inline_all else Refine.Check.With_summaries
    in
    let budget =
      Budget.create ?deadline_s:deadline ?solver_steps ?max_paths ()
    in
    let verdict =
      try
        Dnsv.Pipeline.verify ~qtypes ~mode ~check_layers:(not no_layers)
          ~budget ~retries ~jobs cfg zone
      with e ->
        Printf.eprintf "internal error: %s\n" (Printexc.to_string e);
        exit 3
    in
    print_string (Dnsv.Pipeline.verdict_to_string verdict);
    match Dnsv.Pipeline.status verdict with
    | Budget.Proved -> exit 0
    | Budget.Refuted _ -> exit 1
    | Budget.Inconclusive (Budget.Internal_error _) -> exit 3
    | Budget.Inconclusive _ -> exit 2
  in
  let inline =
    Arg.(value & flag & info [ "inline" ] ~doc:"Inline all layers instead of summarizing.")
  in
  let no_layers =
    Arg.(value & flag & info [ "no-layers" ] ~doc:"Skip the dependency-layer checks.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify an engine version against the top-level specification"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "0 on a full proof, 1 when a counterexample was found, 2 when \
              the result is inconclusive (budget exhausted, solver unknowns, \
              summary failure), 3 on internal or usage errors.";
         ])
    Term.(
      const run $ version_arg $ zone_file_arg $ qtypes_arg $ inline $ no_layers
      $ deadline_arg $ solver_steps_arg $ max_paths_arg $ retries_arg
      $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* layers                                                             *)
(* ------------------------------------------------------------------ *)

let layers_cmd =
  let run version =
    let cfg = config_of_version version in
    let prog = Engine.Versions.compiled cfg in
    let reports = Refine.Layers.check_all prog in
    List.iter
      (fun (r : Refine.Layers.layer_report) ->
        Printf.printf "%-18s code=%3d spec=%3d  %.3fs  %s\n"
          r.Refine.Layers.layer r.Refine.Layers.code_paths
          r.Refine.Layers.spec_paths r.Refine.Layers.elapsed
          (if Refine.Layers.layer_ok r then "ok"
           else String.concat "; " r.Refine.Layers.mismatches))
      reports;
    if List.for_all Refine.Layers.layer_ok reports then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "layers"
       ~doc:"Verify the dependency layers against their manual specifications")
    Term.(const run $ version_arg)

(* ------------------------------------------------------------------ *)
(* summarize                                                          *)
(* ------------------------------------------------------------------ *)

let summarize_cmd =
  let run zone_file =
    let zone =
      match zone_file with
      | None -> Spec.Fixtures.figure11_zone
      | some -> load_zone some
    in
    Dnsv.Table1.print (Dnsv.Table1.run ~zone ())
  in
  Cmd.v
    (Cmd.info "summarize"
       ~doc:"Summarize TreeSearch over a concrete domain tree (Table 1)")
    Term.(const run $ zone_file_arg)

(* ------------------------------------------------------------------ *)
(* bugs                                                               *)
(* ------------------------------------------------------------------ *)

let bugs_cmd =
  let run () =
    Printf.printf "%-3s %-8s %-20s %s\n" "#" "Version" "Classification"
      "Description";
    List.iter
      (fun (i : Engine.Bugs.info) ->
        Printf.printf "%-3d %-8s %-20s %s\n" i.Engine.Bugs.index
          i.Engine.Bugs.version i.Engine.Bugs.classification
          i.Engine.Bugs.description)
      Engine.Bugs.table2
  in
  Cmd.v
    (Cmd.info "bugs" ~doc:"List the Table-2 bug registry")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* zonegen                                                            *)
(* ------------------------------------------------------------------ *)

let zonegen_cmd =
  let run seed origin =
    let origin = Name.of_string_exn origin in
    let zone = Dns.Zonegen.generate ~seed origin in
    print_string (Dns.Zonefile.render zone)
  in
  let origin =
    Arg.(
      value & opt string "gen.example"
      & info [ "o"; "origin" ] ~docv:"NAME" ~doc:"Zone origin.")
  in
  Cmd.v
    (Cmd.info "zonegen" ~doc:"Generate a random zone configuration (§6.5)")
    Term.(const run $ seed_arg $ origin)

(* ------------------------------------------------------------------ *)
(* replay                                                             *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let run version zone_file qname qtype =
    let cfg = config_of_version version in
    let zone = load_zone zone_file in
    let q = Message.query (Name.of_string_exn qname) qtype in
    Format.printf "query: %a@.@." Message.pp_query q;
    (match Engine.Versions.run cfg zone q with
    | Engine.Versions.Response r ->
        Format.printf "engine %s:@.%a@." version Message.pp_response r
    | Engine.Versions.Engine_panic m ->
        Format.printf "engine %s: PANIC (%s)@." version m);
    Format.printf "@.specification:@.%a@." Message.pp_response
      (Spec.Rrlookup.resolve zone q)
  in
  let qname =
    Arg.(
      required
      & opt (some string) None
      & info [ "q"; "qname" ] ~docv:"NAME" ~doc:"Query name.")
  in
  let qtype =
    Arg.(value & opt qtype_arg Rr.A & info [ "qtype" ] ~docv:"TYPE" ~doc:"Query type.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Run one concrete query on the engine and the specification")
    Term.(const run $ version_arg $ zone_file_arg $ qname $ qtype)

(* ------------------------------------------------------------------ *)
(* source                                                             *)
(* ------------------------------------------------------------------ *)

let source_cmd =
  let run version ir =
    let cfg = config_of_version version in
    if ir then
      print_string
        (Minir.Pretty.program_to_string (Engine.Versions.compiled cfg))
    else
      print_string
        (Golite.Print.program_to_string (Engine.Builder.golite_program cfg))
  in
  let ir =
    Arg.(
      value & flag
      & info [ "ir" ] ~doc:"Print the compiled Minir IR instead of the Golite source.")
  in
  Cmd.v
    (Cmd.info "source"
       ~doc:"Print an engine version's Golite source (or its compiled IR)")
    Term.(const run $ version_arg $ ir)

(* ------------------------------------------------------------------ *)
(* rawname                                                            *)
(* ------------------------------------------------------------------ *)

let rawname_cmd =
  let run () =
    let r = Refine.Raw_name.check () in
    Refine.Raw_name.print r;
    if Refine.Raw_name.ok r then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "rawname"
       ~doc:
         "Verify the byte-level compareRaw against the word-level compareAbs \
          (the paper's section 6.3)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "dnsv" ~version:"1.0.0"
      ~doc:
        "DNS-V: automated verification of an in-production DNS authoritative \
         engine"
  in
  let code =
    Cmd.eval
      (Cmd.group info
         [
           verify_cmd; layers_cmd; summarize_cmd; bugs_cmd; zonegen_cmd;
           replay_cmd; source_cmd; rawname_cmd;
         ])
  in
  (* Fold cmdliner's cli/internal error codes (124/125) into the
     documented contract: 3 = internal or usage error. *)
  exit (if code = 124 || code = 125 then 3 else code)
