(* Engine tests: compilation of all versions, domain-tree invariants,
   differential testing of the corrected engines against the top-level
   specification, and concrete evidence for each seeded Table-2 bug. *)

module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message
module Rrlookup = Spec.Rrlookup
module Fixtures = Spec.Fixtures
module Versions = Engine.Versions
module Builder = Engine.Builder
module Bugs = Engine.Bugs
module Tree = Dnstree.Tree
module Layout = Dnstree.Layout

let n = Name.of_string_exn
let check_bool = Alcotest.(check bool)

let response_testable =
  Alcotest.testable
    (fun fmt r -> Message.pp_response fmt r)
    Message.equal_response

let run_engine cfg zone q = Versions.run cfg zone q

let expect_response cfg zone q =
  match run_engine cfg zone q with
  | Versions.Response r -> r
  | Versions.Engine_panic m -> Alcotest.failf "engine panicked: %s" m

(* ------------------------------------------------------------------ *)
(* Compilation & tree invariants                                      *)
(* ------------------------------------------------------------------ *)

let test_all_versions_compile () =
  List.iter
    (fun cfg ->
      let p = Versions.compiled cfg in
      check_bool
        (cfg.Builder.version ^ " has instructions")
        true
        (Minir.Instr.program_instruction_count p > 100);
      (* The engine carries panic blocks (safety checks). *)
      let resolve = Minir.Instr.find_func p "resolve" in
      check_bool "resolve exists" true (resolve.Minir.Instr.fn_name = "resolve"))
    (Versions.all @ List.map Versions.fixed Versions.all)

let test_version_lookup () =
  (match Versions.find "2.0" with
  | Some cfg -> check_bool "v2 bugs" true cfg.Builder.bugs.Bugs.bug4_glue_first_only
  | None -> Alcotest.fail "2.0 must resolve");
  match Versions.find "2.0-fixed" with
  | Some cfg -> check_bool "fixed has no bugs" true (Bugs.active cfg.Builder.bugs = [])
  | None -> Alcotest.fail "2.0-fixed must resolve"

let test_tree_invariants () =
  List.iter
    (fun zone ->
      let tree = Tree.build zone in
      match Tree.check_invariants tree with
      | [] -> ()
      | errs -> Alcotest.failf "tree invariants: %s" (String.concat "; " errs))
    [ Fixtures.reference_zone; Fixtures.figure11_zone ]

let test_tree_nodes () =
  let tree = Tree.build Fixtures.reference_zone in
  (* Empty non-terminals materialize as nodes. *)
  (match Tree.find_node tree (n "a.example.com") with
  | Some node ->
      check_bool "ENT has no data" false node.Tree.has_data
  | None -> Alcotest.fail "ENT node missing");
  (match Tree.find_node tree (n "*.wild.example.com") with
  | Some node -> check_bool "wildcard flag" true node.Tree.is_wildcard
  | None -> Alcotest.fail "wildcard node missing");
  check_bool "several nodes" true (Tree.node_count tree > 10)

let prop_tree_invariants_generated =
  QCheck.Test.make ~name:"tree invariants on generated zones" ~count:40
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let z = Dns.Zonegen.generate ~seed (n "gen.example") in
      Tree.check_invariants (Tree.build z) = [])

(* ------------------------------------------------------------------ *)
(* Differential testing: corrected engines ≡ specification            *)
(* ------------------------------------------------------------------ *)

let diff_one cfg zone q =
  (* Skip queries that exceed the engine's name capacity. *)
  if Name.label_count q.Message.qname > Layout.max_labels then true
  else
    let spec_resp = Rrlookup.resolve zone q in
    match run_engine cfg zone q with
    | Versions.Response r -> Message.equal_response r spec_resp
    | Versions.Engine_panic _ -> false

let reference_queries =
  [
    ("www.example.com", Rr.A);
    ("www.example.com", Rr.AAAA);
    ("www.example.com", Rr.MX);
    ("www.example.com", Rr.TXT);
    ("example.com", Rr.SOA);
    ("example.com", Rr.NS);
    ("example.com", Rr.MX);
    ("example.com", Rr.A);
    ("a.example.com", Rr.A);
    ("deep.a.example.com", Rr.A);
    ("nosuch.example.com", Rr.A);
    ("x.wild.example.com", Rr.A);
    ("x.wild.example.com", Rr.MX);
    ("x.wild.example.com", Rr.TXT);
    ("a.b.wild.example.com", Rr.A);
    ("wild.example.com", Rr.A);
    ("x.alias.example.com", Rr.A);
    ("c1.example.com", Rr.A);
    ("c1.example.com", Rr.CNAME);
    ("c2.example.com", Rr.A);
    ("l1.example.com", Rr.A);
    ("ext.example.com", Rr.A);
    ("sub.example.com", Rr.A);
    ("sub.example.com", Rr.NS);
    ("host.sub.example.com", Rr.A);
    ("x.y.sub.example.com", Rr.A);
    ("ns.sub.example.com", Rr.A);
    ("intocut.example.com", Rr.A);
    ("www.other.net", Rr.A);
    ("mail.example.com", Rr.A);
  ]

let test_fixed_engines_match_spec_reference () =
  List.iter
    (fun cfg ->
      let cfg = Versions.fixed cfg in
      List.iter
        (fun (qname, qtype) ->
          let q = Message.query (n qname) qtype in
          let spec_resp = Rrlookup.resolve Fixtures.reference_zone q in
          let engine_resp = expect_response cfg Fixtures.reference_zone q in
          Alcotest.check response_testable
            (Printf.sprintf "%s: %s %s" cfg.Builder.version qname
               (Rr.rtype_to_string qtype))
            spec_resp engine_resp)
        reference_queries)
    Versions.all

let prop_fixed_engine_matches_spec_generated =
  QCheck.Test.make
    ~name:"fixed engines ≡ spec on generated zones (differential)" ~count:120
    QCheck.(pair (int_range 0 3_000) (int_range 0 10_000))
    (fun (seed, qseed) ->
      let zone = Dns.Zonegen.generate ~seed (n "gen.example") in
      let rng = Random.State.make [| qseed |] in
      let q = Dns.Zonegen.random_query ~rng zone in
      List.for_all
        (fun cfg -> diff_one (Versions.fixed cfg) zone q)
        [ Versions.v3_0; Versions.dev ])

let prop_fixed_v1_v2_match_spec_generated =
  QCheck.Test.make ~name:"fixed v1.0/v2.0 ≡ spec on generated zones"
    ~count:80
    QCheck.(pair (int_range 3_000 6_000) (int_range 0 10_000))
    (fun (seed, qseed) ->
      let zone = Dns.Zonegen.generate ~seed (n "gen.example") in
      let rng = Random.State.make [| qseed |] in
      let q = Dns.Zonegen.random_query ~rng zone in
      List.for_all
        (fun cfg -> diff_one (Versions.fixed cfg) zone q)
        [ Versions.v1_0; Versions.v2_0 ])

(* ------------------------------------------------------------------ *)
(* Each Table-2 bug shows up concretely on its witness                *)
(* ------------------------------------------------------------------ *)

let buggy_config_for = function
  | 1 | 2 | 3 -> Versions.v1_0
  | 4 | 5 | 6 | 7 -> Versions.v2_0
  | 8 -> Versions.v3_0
  | 9 -> Versions.dev
  | _ -> invalid_arg "bug index"

let test_bug_witnesses () =
  List.iter
    (fun (w : Fixtures.witness) ->
      let cfg = buggy_config_for w.Fixtures.bug_index in
      let spec_resp = Rrlookup.resolve w.Fixtures.zone w.Fixtures.query in
      (match run_engine cfg w.Fixtures.zone w.Fixtures.query with
      | Versions.Response r ->
          check_bool
            (Printf.sprintf "bug %d (%s) diverges on %s" w.Fixtures.bug_index
               cfg.Builder.version w.Fixtures.note)
            false
            (Message.equal_response r spec_resp)
      | Versions.Engine_panic _ ->
          check_bool "only bug 9 panics" true (w.Fixtures.bug_index = 9));
      (* The corrected engine agrees with the spec on the same witness. *)
      let fixed_resp =
        expect_response (Versions.fixed cfg) w.Fixtures.zone w.Fixtures.query
      in
      Alcotest.check response_testable
        (Printf.sprintf "bug %d fixed" w.Fixtures.bug_index)
        spec_resp fixed_resp)
    Fixtures.witnesses

let test_bug9_is_a_panic () =
  let w = Fixtures.witness 9 in
  match run_engine Versions.dev w.Fixtures.zone w.Fixtures.query with
  | Versions.Engine_panic msg ->
      check_bool "nil deref" true (Astring.String.is_infix ~affix:"nil" msg)
  | Versions.Response _ -> Alcotest.fail "bug 9 must be a runtime error"

(* Buggy engines still match the spec away from their trigger. *)
let test_bugs_are_latent () =
  let zone = Fixtures.reference_zone in
  let benign = [ ("www.example.com", Rr.A); ("nosuch.example.com", Rr.A) ] in
  List.iter
    (fun cfg ->
      List.iter
        (fun (qname, qtype) ->
          let q = Message.query (n qname) qtype in
          let spec_resp = Rrlookup.resolve zone q in
          match run_engine cfg zone q with
          | Versions.Response r ->
              (* bug 2 makes even plain answers diverge; skip v1.0 for
                 the positive query. *)
              if cfg.Builder.version = "1.0" && qtype = Rr.A then ()
              else
                Alcotest.check response_testable
                  (Printf.sprintf "%s latent on %s" cfg.Builder.version qname)
                  spec_resp r
          | Versions.Engine_panic m ->
              Alcotest.failf "%s panicked on benign %s: %s" cfg.Builder.version
                qname m)
        benign)
    [ Versions.v2_0; Versions.v3_0 ]

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "engine"
    [
      ( "compile",
        [
          Alcotest.test_case "all versions compile" `Quick
            test_all_versions_compile;
          Alcotest.test_case "version lookup" `Quick test_version_lookup;
        ] );
      ( "tree",
        [
          Alcotest.test_case "invariants (fixtures)" `Quick test_tree_invariants;
          Alcotest.test_case "nodes" `Quick test_tree_nodes;
        ]
        @ qcheck [ prop_tree_invariants_generated ] );
      ( "differential",
        [
          Alcotest.test_case "fixed engines = spec on reference zone" `Quick
            test_fixed_engines_match_spec_reference;
        ]
        @ qcheck
            [
              prop_fixed_engine_matches_spec_generated;
              prop_fixed_v1_v2_match_spec_generated;
            ] );
      ( "bugs",
        [
          Alcotest.test_case "every Table-2 bug has a witness" `Quick
            test_bug_witnesses;
          Alcotest.test_case "bug 9 is a runtime error" `Quick
            test_bug9_is_a_panic;
          Alcotest.test_case "bugs are latent off-trigger" `Quick
            test_bugs_are_latent;
        ] );
    ]
