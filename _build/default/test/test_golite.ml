(* Tests for the Golite frontend and the Minir interpreter: compilation
   of representative programs, runtime semantics, automatic safety
   checks, the well-formedness checker, and the opaque-pointer pass. *)

module Ty = Minir.Ty
module Instr = Minir.Instr
module Value = Minir.Value
module Interp = Minir.Interp
open Golite.Dsl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_int ?memory prog fn args =
  let memory = Option.value ~default:Value.empty_memory memory in
  match Interp.run prog ~memory ~fn ~args with
  | Interp.Returned (Some (Value.VInt n), _) -> n
  | Interp.Returned _ -> Alcotest.fail "expected an integer result"
  | Interp.Panicked msg -> Alcotest.fail ("panicked: " ^ msg)

let expect_panic prog fn args =
  match Interp.run prog ~memory:Value.empty_memory ~fn ~args with
  | Interp.Panicked msg -> msg
  | Interp.Returned _ -> Alcotest.fail "expected a panic"

(* ------------------------------------------------------------------ *)
(* Arithmetic, loops, short-circuit                                   *)
(* ------------------------------------------------------------------ *)

let arith_prog =
  program []
    [
      func "factorial"
        ~params:[ ("n", tint) ]
        ~ret:(Some tint)
        [
          decl_init "acc" tint (i 1);
          decl_init "k" tint (i 1);
          while_
            (v "k" <= v "n")
            [ set "acc" (v "acc" * v "k"); set "k" (v "k" + i 1) ];
          return (v "acc");
        ];
      func "abs"
        ~params:[ ("x", tint) ]
        ~ret:(Some tint)
        [ if_ (v "x" < i 0) [ return (neg (v "x")) ] [ return (v "x") ] ];
      func "safe_div"
        ~params:[ ("a", tint); ("b", tint) ]
        ~ret:(Some tint)
        [ return (v "a" / v "b") ];
      (* Short-circuit: (b != 0) && (a / b > 1). Division must be skipped
         when b = 0. *)
      func "guarded"
        ~params:[ ("a", tint); ("b", tint) ]
        ~ret:(Some tint)
        [
          if_
            (v "b" != i 0 && v "a" / v "b" > i 1)
            [ return (i 1) ]
            [ return (i 0) ];
        ];
      func "loop_control"
        ~params:[ ("n", tint) ]
        ~ret:(Some tint)
        [
          (* Sum of odd numbers below n, stopping at 100. *)
          decl_init "sum" tint (i 0);
          decl_init "k" tint (i 0);
          while_ (b true)
            [
              set "k" (v "k" + i 1);
              when_ (v "k" >= v "n") [ break_ ];
              when_ (v "k" % i 2 == i 0) [ continue_ ];
              set "sum" (v "sum" + v "k");
              when_ (v "sum" > i 100) [ break_ ];
            ];
          return (v "sum");
        ];
    ]

let compiled_arith = lazy (Golite.Compile.compile arith_prog)

let test_factorial () =
  let p = Lazy.force compiled_arith in
  check_int "5! = 120" 120 (run_int p "factorial" [ Value.VInt 5 ]);
  check_int "0! = 1" 1 (run_int p "factorial" [ Value.VInt 0 ])

let test_abs () =
  let p = Lazy.force compiled_arith in
  check_int "abs -7" 7 (run_int p "abs" [ Value.VInt (-7) ]);
  check_int "abs 3" 3 (run_int p "abs" [ Value.VInt 3 ])

let test_division_panic () =
  let p = Lazy.force compiled_arith in
  check_int "10 / 2" 5 (run_int p "safe_div" [ Value.VInt 10; Value.VInt 2 ]);
  let msg = expect_panic p "safe_div" [ Value.VInt 1; Value.VInt 0 ] in
  check_bool "divide-by-zero panic" true
    (Astring.String.is_infix ~affix:"zero" msg)

let test_short_circuit () =
  let p = Lazy.force compiled_arith in
  (* b = 0 must not divide. *)
  check_int "guard blocks division" 0
    (run_int p "guarded" [ Value.VInt 10; Value.VInt 0 ]);
  check_int "guard passes" 1 (run_int p "guarded" [ Value.VInt 10; Value.VInt 2 ])

let test_loop_control () =
  let p = Lazy.force compiled_arith in
  (* odds below 7: 1+3+5 = 9 *)
  check_int "break/continue" 9 (run_int p "loop_control" [ Value.VInt 7 ])

let prop_factorial_matches_ocaml =
  QCheck.Test.make ~name:"golite factorial = OCaml factorial" ~count:30
    QCheck.(int_range 0 12)
    (fun n ->
      let rec fact k =
        Stdlib.(if k <= 1 then 1 else k * fact (k - 1))
      in
      run_int (Lazy.force compiled_arith) "factorial" [ Value.VInt n ] = fact n)

(* ------------------------------------------------------------------ *)
(* Structs, arrays, pointers, safety checks                           *)
(* ------------------------------------------------------------------ *)

let data_prog =
  program
    [
      struct_ "Point" [ ("x", tint); ("y", tint) ];
      struct_ "Stack" [ ("data", tarray tint 4); ("level", tint) ];
      struct_ "Node" [ ("value", tint); ("next", tptr (tstruct "Node")) ];
    ]
    [
      func "mk_point"
        ~params:[ ("x", tint); ("y", tint) ]
        ~ret:(Some (tptr (tstruct "Point")))
        [
          decl_init "p" (tptr (tstruct "Point")) (new_ (tstruct "Point"));
          set_field (v "p") "x" (v "x");
          set_field (v "p") "y" (v "y");
          return (v "p");
        ];
      func "manhattan"
        ~params:[ ("p", tptr (tstruct "Point")) ]
        ~ret:(Some tint)
        [ return (v "p" %. "x" + v "p" %. "y") ];
      (* The paper's Figure-3 stack: push is encapsulated, but the level
         field is also read directly by external code. *)
      func "push"
        ~params:[ ("s", tptr (tstruct "Stack")); ("x", tint) ]
        ~ret:None
        [
          set_index (v "s" %. "data") (v "s" %. "level") (v "x");
          set_field (v "s") "level" (v "s" %. "level" + i 1);
          return_void;
        ];
      func "stack_sum" ~params:[] ~ret:(Some tint)
        [
          decl "s" (tstruct "Stack");
          expr (call "push" [ v "s"; i 10 ]);
          expr (call "push" [ v "s"; i 20 ]);
          expr (call "push" [ v "s"; i 30 ]);
          decl_init "sum" tint (i 0);
          decl_init "k" tint (i 0);
          while_
            (v "k" < v "s" %. "level")
            [
              set "sum" (v "sum" + (v "s" %. "data" %@ v "k"));
              set "k" (v "k" + i 1);
            ];
          return (v "sum");
        ];
      (* Pushing 5 elements overflows the 4-cell array: the compiler's
         bounds check must panic. *)
      func "stack_overflow" ~params:[] ~ret:(Some tint)
        [
          decl "s" (tstruct "Stack");
          decl_init "k" tint (i 0);
          while_ (v "k" < i 5)
            [ expr (call "push" [ v "s"; v "k" ]); set "k" (v "k" + i 1) ];
          return (v "s" %. "level");
        ];
      func "nil_deref" ~params:[] ~ret:(Some tint)
        [
          decl_init "p" (tptr (tstruct "Point")) (nil (tstruct "Point"));
          return (v "p" %. "x");
        ];
      (* Linked list length, with heap nodes. *)
      func "list_len"
        ~params:[ ("head", tptr (tstruct "Node")) ]
        ~ret:(Some tint)
        [
          decl_init "n" tint (i 0);
          decl_init "cur" (tptr (tstruct "Node")) (v "head");
          while_
            (v "cur" != nil (tstruct "Node"))
            [ set "n" (v "n" + i 1); set "cur" (v "cur" %. "next") ];
          return (v "n");
        ];
      func "mk_list"
        ~params:[ ("n", tint) ]
        ~ret:(Some (tptr (tstruct "Node")))
        [
          decl_init "head" (tptr (tstruct "Node")) (nil (tstruct "Node"));
          decl_init "k" tint (i 0);
          while_ (v "k" < v "n")
            [
              decl_init "node" (tptr (tstruct "Node")) (new_ (tstruct "Node"));
              set_field (v "node") "value" (v "k");
              set_field (v "node") "next" (v "head");
              set "head" (v "node");
              set "k" (v "k" + i 1);
            ];
          return (v "head");
        ];
      func "roundtrip"
        ~params:[ ("n", tint) ]
        ~ret:(Some tint)
        [ return (call "list_len" [ call "mk_list" [ v "n" ] ]) ];
    ]

let compiled_data = lazy (Golite.Compile.compile data_prog)

let test_struct_fields () =
  let p = Lazy.force compiled_data in
  match
    Interp.run p ~memory:Value.empty_memory ~fn:"mk_point"
      ~args:[ Value.VInt 3; Value.VInt 4 ]
  with
  | Interp.Returned (Some (Value.VPtr ptr), mem) -> (
      match Value.load_mval mem ptr with
      | Value.MStruct [| Value.MInt 3; Value.MInt 4 |] -> ()
      | mv -> Alcotest.failf "unexpected struct %a" Value.pp_mval mv)
  | _ -> Alcotest.fail "expected pointer result"

let test_stack () =
  let p = Lazy.force compiled_data in
  check_int "stack sum" 60 (run_int p "stack_sum" [])

let test_stack_overflow_panics () =
  let p = Lazy.force compiled_data in
  let msg = expect_panic p "stack_overflow" [] in
  check_bool "bounds panic" true
    (Astring.String.is_infix ~affix:"out of range" msg)

let test_nil_deref_panics () =
  let p = Lazy.force compiled_data in
  let msg = expect_panic p "nil_deref" [] in
  check_bool "nil panic" true (Astring.String.is_infix ~affix:"nil" msg)

let prop_list_roundtrip =
  QCheck.Test.make ~name:"linked list length roundtrip" ~count:30
    QCheck.(int_range 0 20)
    (fun n -> run_int (Lazy.force compiled_data) "roundtrip" [ Value.VInt n ] = n)

(* ------------------------------------------------------------------ *)
(* Type and well-formedness rejection                                 *)
(* ------------------------------------------------------------------ *)

let test_type_errors () =
  let reject prog =
    match Golite.Compile.compile prog with
    | _ -> Alcotest.fail "expected a Golite_error"
    | exception Golite.Ast.Golite_error _ -> ()
  in
  (* int + bool *)
  reject
    (program []
       [
         func "bad" ~params:[] ~ret:(Some tint)
           [ return (i 1 + b true) ];
       ]);
  (* unknown variable *)
  reject
    (program []
       [ func "bad" ~params:[] ~ret:(Some tint) [ return (v "ghost") ] ]);
  (* wrong arity *)
  reject
    (program []
       [
         func "id" ~params:[ ("x", tint) ] ~ret:(Some tint) [ return (v "x") ];
         func "bad" ~params:[] ~ret:(Some tint) [ return (call "id" []) ];
       ]);
  (* return type mismatch *)
  reject
    (program []
       [ func "bad" ~params:[] ~ret:(Some tint) [ return (b true) ] ])

let test_wellform_rejects () =
  (* Hand-build an ill-formed Minir function: use of undefined register. *)
  let f =
    {
      Instr.fn_name = "broken";
      params = [];
      ret_ty = Some Ty.I64;
      entry = "entry";
      blocks =
        [
          ( "entry",
            { Instr.insns = []; term = Instr.Ret (Some (Instr.Reg "ghost")) }
          );
        ];
    }
  in
  let p = { Instr.tenv = []; funcs = [ f ] } in
  match Minir.Wellform.check p with
  | Minir.Wellform.Ok -> Alcotest.fail "expected rejection"
  | Minir.Wellform.Errors _ -> ()

let test_missing_return_panics () =
  let prog =
    program []
      [
        func "no_ret" ~params:[ ("x", tint) ] ~ret:(Some tint)
          [ when_ (v "x" > i 0) [ return (i 1) ] ];
      ]
  in
  let p = Golite.Compile.compile prog in
  check_int "positive path returns" 1 (run_int p "no_ret" [ Value.VInt 5 ]);
  let msg = expect_panic p "no_ret" [ Value.VInt (-5) ] in
  check_bool "missing return" true
    (Astring.String.is_infix ~affix:"missing return" msg)

(* ------------------------------------------------------------------ *)
(* Opaque pointer resolution (§5.5)                                   *)
(* ------------------------------------------------------------------ *)

let test_opaque_resolution () =
  (* Hand-write IR that bitcasts a Point* to i8*, byte-offsets to field y
     (offset 8 under the data layout), and loads/stores through it. *)
  let tenv =
    [
      {
        Ty.sname = "Point";
        fields =
          [ { Ty.fname = "x"; fty = Ty.I64 }; { Ty.fname = "y"; fty = Ty.I64 } ];
      };
    ]
  in
  let f =
    {
      Instr.fn_name = "poke_y";
      params = [ ("p", Ty.Ptr (Ty.Struct "Point")) ];
      ret_ty = Some Ty.I64;
      entry = "entry";
      blocks =
        [
          ( "entry",
            {
              Instr.insns =
                [
                  Instr.Assign ("raw", Instr.Bitcast (Instr.Reg "p"));
                  Instr.Assign
                    ("yptr", Instr.Byte_gep (Instr.Reg "raw", Instr.Const_int 8));
                  Instr.Opaque_store (Ty.I64, Instr.Const_int 42, Instr.Reg "yptr");
                  Instr.Assign ("out", Instr.Opaque_load (Ty.I64, Instr.Reg "yptr"));
                ];
              term = Instr.Ret (Some (Instr.Reg "out"));
            } );
        ];
    }
  in
  let p = { Instr.tenv; funcs = [ f ] } in
  let resolved = Minir.Opaque.resolve p in
  Minir.Wellform.check_exn resolved;
  (* No opaque operations must remain. *)
  List.iter
    (fun f ->
      List.iter
        (fun (_, blk) ->
          List.iter
            (function
              | Instr.Assign (_, (Instr.Bitcast _ | Instr.Byte_gep _ | Instr.Opaque_load _))
              | Instr.Opaque_store _ ->
                  Alcotest.fail "opaque op left after resolution"
              | _ -> ())
            blk.Instr.insns)
        f.Instr.blocks)
    resolved.Instr.funcs;
  (* Execute: allocate a Point, run poke_y, expect 42 and memory updated. *)
  let mem, ptr =
    Value.alloc Value.empty_memory
      (Value.MStruct [| Value.MInt 1; Value.MInt 2 |])
  in
  match
    Interp.run resolved ~memory:mem ~fn:"poke_y" ~args:[ Value.VPtr ptr ]
  with
  | Interp.Returned (Some (Value.VInt 42), mem') -> (
      match Value.load_mval mem' ptr with
      | Value.MStruct [| Value.MInt 1; Value.MInt 42 |] -> ()
      | mv -> Alcotest.failf "unexpected memory %a" Value.pp_mval mv)
  | Interp.Returned _ -> Alcotest.fail "wrong result"
  | Interp.Panicked m -> Alcotest.fail ("panic: " ^ m)

let test_pretty_printer_smoke () =
  let p = Lazy.force compiled_data in
  let s = Minir.Pretty.program_to_string p in
  check_bool "mentions define" true (Astring.String.is_infix ~affix:"define @push" s);
  check_bool "mentions panic" true (Astring.String.is_infix ~affix:"panic" s)

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest


(* ------------------------------------------------------------------ *)
(* Concrete syntax: print/parse round trip                            *)
(* ------------------------------------------------------------------ *)

let test_print_parse_roundtrip_engine () =
  (* Every engine version's source survives a print/parse round trip
     structurally unchanged. *)
  List.iter
    (fun cfg ->
      let p = Engine.Builder.golite_program cfg in
      let text = Golite.Print.program_to_string p in
      match Golite.Parse.program_of_string text with
      | Ok p' ->
          check_bool (cfg.Engine.Builder.version ^ " roundtrip") true (p = p')
      | Error m -> Alcotest.failf "%s: %s" cfg.Engine.Builder.version m)
    (Engine.Versions.all @ [ Engine.Versions.fixed Engine.Versions.dev ])

let test_parse_precedence () =
  (* 1 + 2 * 3 == 7 && !false *)
  let src = "func f() bool {\n  return 1 + 2 * 3 == 7 && !false\n}\n" in
  match Golite.Parse.program_of_string src with
  | Error m -> Alcotest.fail m
  | Ok p -> (
      match (List.hd p.Golite.Ast.funcs).Golite.Ast.body with
      | [ Golite.Ast.Return (Some e) ] ->
          let open Golite.Ast in
          let expected =
            Binop
              ( And,
                Binop
                  ( Eq,
                    Binop (Add, Int 1, Binop (Mul, Int 2, Int 3)),
                    Int 7 ),
                Unop (Not, Bool false) )
          in
          check_bool "precedence" true (e = expected)
      | _ -> Alcotest.fail "unexpected body")

let test_parse_errors () =
  let reject src =
    match Golite.Parse.program_of_string src with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  reject "func f( {\n}\n";
  reject "func f() int {\n  return 1 +\n}\n";
  reject "struct S {\n  x\n}\n";
  reject "func f() {\n  1 = 2\n}\n";
  reject "garbage\n"

let test_parsed_program_compiles_and_runs () =
  let src =
    "struct P {\n  x int\n  y int\n}\n\n\
     func sum(p *P) int {\n  return p.x + p.y\n}\n\n\
     func main() int {\n\
    \  var p *P = new(P)\n\
    \  p.x = 20\n\
    \  p.y = 22\n\
    \  return sum(p)\n\
     }\n"
  in
  let prog = Golite.Compile.compile (Golite.Parse.program_of_string_exn src) in
  check_int "parsed program runs" 42 (run_int prog "main" [])

let () =
  Alcotest.run "golite"
    [
      ( "arith",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "abs" `Quick test_abs;
          Alcotest.test_case "division panic" `Quick test_division_panic;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "break/continue" `Quick test_loop_control;
        ]
        @ qcheck [ prop_factorial_matches_ocaml ] );
      ( "data",
        [
          Alcotest.test_case "struct fields" `Quick test_struct_fields;
          Alcotest.test_case "stack push/sum" `Quick test_stack;
          Alcotest.test_case "stack overflow panics" `Quick
            test_stack_overflow_panics;
          Alcotest.test_case "nil deref panics" `Quick test_nil_deref_panics;
        ]
        @ qcheck [ prop_list_roundtrip ] );
      ( "rejection",
        [
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "wellform rejects" `Quick test_wellform_rejects;
          Alcotest.test_case "missing return" `Quick test_missing_return_panics;
        ] );
      ( "opaque",
        [
          Alcotest.test_case "resolution" `Quick test_opaque_resolution;
          Alcotest.test_case "pretty printer" `Quick test_pretty_printer_smoke;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "engine sources roundtrip" `Quick
            test_print_parse_roundtrip_engine;
          Alcotest.test_case "operator precedence" `Quick test_parse_precedence;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "parsed program compiles and runs" `Quick
            test_parsed_program_compiles_and_runs;
        ] );
    ]
