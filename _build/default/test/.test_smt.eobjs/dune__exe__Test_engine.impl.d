test/test_engine.ml: Alcotest Astring Dns Dnstree Engine List Minir Printf QCheck QCheck_alcotest Random Spec String
