test/test_smt.mli:
