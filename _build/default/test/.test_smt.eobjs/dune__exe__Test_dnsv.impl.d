test/test_dnsv.ml: Alcotest Astring Dns Dnsv Engine List Spec
