test/test_golite.mli:
