test/test_dns.ml: Alcotest Char Dns Gen List QCheck QCheck_alcotest Random Spec
