test/test_symex.mli:
