test/test_symex.ml: Alcotest Array Astring Dns Dnstree Engine Golite Lazy List Minir QCheck QCheck_alcotest Random Refine Smt Spec String Symex
