test/test_smt.ml: Alcotest Array Lia Linear List Model Option Q QCheck QCheck_alcotest Simplex Smt Solver Term
