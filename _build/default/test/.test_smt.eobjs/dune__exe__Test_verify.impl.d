test/test_verify.ml: Alcotest Array Dns Dnstree Engine List Minir Printf QCheck QCheck_alcotest Random Refine Smt Spec Symex
