test/test_dnsv.mli:
