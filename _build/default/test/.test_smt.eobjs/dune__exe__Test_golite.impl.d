test/test_golite.ml: Alcotest Astring Engine Golite Lazy List Minir Option QCheck QCheck_alcotest Stdlib
