test/test_dns.mli:
