(* Unit tests for the symbolic-execution substrate: symbolic values and
   the flexible memory model, the executor (forking, feasibility
   pruning, symbolic indices, panic paths), summarization (input-effect
   pairs, effect diffs, cache reuse, soundness against concrete replay),
   manual layer specifications, and the §6.3 compareRaw refinement. *)

module Term = Smt.Term
module Solver = Smt.Solver
module Ty = Minir.Ty
module Instr = Minir.Instr
module Value = Minir.Value
module Sval = Symex.Sval
module Exec = Symex.Exec
module Summary = Symex.Summary

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sym_mem () = Sval.memory_of_concrete Value.empty_memory

(* ------------------------------------------------------------------ *)
(* Memory model: partial abstraction                                  *)
(* ------------------------------------------------------------------ *)

let test_partial_abstraction () =
  (* A struct whose first field is symbolic while the second stays
     concrete and is updated through ordinary stores (§5.1). *)
  let mem = sym_mem () in
  let cell =
    Sval.CStruct [| Sval.CInt (Term.int_var "abs"); Sval.CInt (Term.int 7) |]
  in
  let mem, p = Sval.alloc mem cell in
  let concrete_field = { p with Value.path = [ 1 ] } in
  let mem = Sval.store mem concrete_field (Sval.CInt (Term.int 8)) in
  (match Sval.load mem { p with Value.path = [ 0 ] } with
  | Sval.SInt (Term.Var v) -> Alcotest.(check string) "abstract" "abs" v.Term.name
  | _ -> Alcotest.fail "abstract field lost");
  match Sval.load mem concrete_field with
  | Sval.SInt (Term.Int_const 8) -> ()
  | _ -> Alcotest.fail "concrete field not updated"

let test_cell_navigation () =
  let c =
    Sval.CStruct
      [|
        Sval.CArray [| Sval.CInt (Term.int 1); Sval.CInt (Term.int 2) |];
        Sval.CBool Term.true_;
      |]
  in
  (match Sval.cell_get c [ 0; 1 ] with
  | Sval.CInt (Term.Int_const 2) -> ()
  | _ -> Alcotest.fail "get");
  let c' = Sval.cell_set c [ 0; 0 ] (Sval.CInt (Term.int 9)) in
  (match Sval.cell_get c' [ 0; 0 ] with
  | Sval.CInt (Term.Int_const 9) -> ()
  | _ -> Alcotest.fail "set");
  (* Original untouched (persistent update). *)
  match Sval.cell_get c [ 0; 0 ] with
  | Sval.CInt (Term.Int_const 1) -> ()
  | _ -> Alcotest.fail "persistence"

let test_stack_blocks_excluded_from_diff () =
  let m0 = sym_mem () in
  let m1, _stack = Sval.alloc ~stack:true m0 (Sval.CInt (Term.int 5)) in
  let m1, _heap = Sval.alloc m1 (Sval.CInt (Term.int 6)) in
  let writes, allocs = Summary.diff_memory m0 m1 in
  check_int "no writes" 0 (List.length writes);
  check_int "only the heap alloc" 1 (List.length allocs)

(* ------------------------------------------------------------------ *)
(* Executor                                                           *)
(* ------------------------------------------------------------------ *)

(* abs(x) in Golite, executed on a symbolic input: exactly two feasible
   paths with complementary conditions. *)
let abs_prog =
  let open Golite.Dsl in
  Golite.Compile.compile
    (program []
       [
         func "abs" ~params:[ ("x", tint) ] ~ret:(Some tint)
           [ if_ (v "x" < i 0) [ return (neg (v "x")) ] [ return (v "x") ] ];
       ])

let test_fork_on_symbolic_branch () =
  let ctx = Exec.create abs_prog in
  let results =
    Exec.run ctx ~memory:(sym_mem ()) ~pc:[] ~fn:"abs"
      ~args:[ Sval.SInt (Term.int_var "x") ]
  in
  check_int "two paths" 2 (List.length results);
  (* Each path's result is non-negative under its own condition. *)
  List.iter
    (fun ((path : Exec.path), outcome) ->
      match outcome with
      | Exec.Returned (Some (Sval.SInt r)) -> (
          match
            Solver.entails ~hyps:path.Exec.pc (Term.ge r (Term.int 0))
          with
          | Solver.Valid -> ()
          | _ -> Alcotest.fail "abs must be non-negative per path")
      | _ -> Alcotest.fail "unexpected outcome")
    results

let test_feasibility_pruning () =
  let ctx = Exec.create abs_prog in
  (* Under pc x >= 5, only the non-negative branch survives. *)
  let results =
    Exec.run ctx ~memory:(sym_mem ())
      ~pc:[ Term.ge (Term.int_var "x") (Term.int 5) ]
      ~fn:"abs"
      ~args:[ Sval.SInt (Term.int_var "x") ]
  in
  check_int "one path" 1 (List.length results)

let bounds_prog =
  let open Golite.Dsl in
  Golite.Compile.compile
    (program []
       [
         func "read"
           ~params:[ ("a", tarray tint 4); ("idx", tint) ]
           ~ret:(Some tint)
           [ return (v "a" %@ v "idx") ];
       ])

let test_symbolic_index_concretization () =
  (* A fully symbolic index against a 4-cell array: four in-range paths
     plus the reachable bounds panic. *)
  let ctx = Exec.create bounds_prog in
  let mem, arr =
    Sval.alloc (sym_mem ())
      (Sval.CArray (Array.init 4 (fun j -> Sval.CInt (Term.int (10 + j)))))
  in
  let results =
    Exec.run ctx ~memory:mem ~pc:[] ~fn:"read"
      ~args:[ Sval.SPtr arr; Sval.SInt (Term.int_var "idx") ]
  in
  let panics, returns =
    List.partition
      (fun (_, o) -> match o with Exec.Panicked _ -> true | _ -> false)
      results
  in
  check_int "four in-range paths" 4 (List.length returns);
  check_bool "a reachable panic path" true (panics <> []);
  (* With the index constrained in range, the panic disappears. *)
  let ctx = Exec.create bounds_prog in
  let results =
    Exec.run ctx ~memory:mem
      ~pc:
        [
          Term.ge (Term.int_var "idx") (Term.int 0);
          Term.lt (Term.int_var "idx") (Term.int 4);
        ]
      ~fn:"read"
      ~args:[ Sval.SPtr arr; Sval.SInt (Term.int_var "idx") ]
  in
  check_bool "no panic in range" true
    (List.for_all
       (fun (_, o) -> match o with Exec.Returned _ -> true | _ -> false)
       results)

let test_nil_panic_path () =
  let prog =
    let open Golite.Dsl in
    Golite.Compile.compile
      (program
         [ struct_ "Box" [ ("v", tint) ] ]
         [
           func "deref"
             ~params:[ ("p", tptr (tstruct "Box")) ]
             ~ret:(Some tint)
             [ return (v "p" %. "v") ];
         ])
  in
  let ctx = Exec.create prog in
  let results =
    Exec.run ctx ~memory:(sym_mem ()) ~pc:[] ~fn:"deref" ~args:[ Sval.SNull ]
  in
  match results with
  | [ (_, Exec.Panicked m) ] ->
      check_bool "nil panic" true (Astring.String.is_infix ~affix:"nil" m)
  | _ -> Alcotest.fail "expected exactly the panic path"

let test_intercept_dispatch () =
  (* An intercept that overrides abs to return 42 unconditionally. *)
  let intercept : Exec.intercept =
   fun _ctx path _args -> [ (path, Exec.Returned (Some (Sval.SInt (Term.int 42)))) ]
  in
  let ctx = Exec.create ~intercepts:[ ("abs", intercept) ] abs_prog in
  match
    Exec.run ctx ~memory:(sym_mem ()) ~pc:[] ~fn:"abs"
      ~args:[ Sval.SInt (Term.int_var "x") ]
  with
  | [ (_, Exec.Returned (Some (Sval.SInt (Term.Int_const 42)))) ] -> ()
  | _ -> Alcotest.fail "intercept not applied"

(* ------------------------------------------------------------------ *)
(* Summarization                                                      *)
(* ------------------------------------------------------------------ *)

(* A small effectful module: conditional field update + append. *)
let effect_prog =
  let open Golite.Dsl in
  Golite.Compile.compile
    (program
       [ struct_ "Buf" [ ("data", tarray tint 4); ("count", tint) ] ]
       [
         func "push_if_positive"
           ~params:[ ("b", tptr (tstruct "Buf")); ("x", tint) ]
           ~ret:(Some tint)
           [
             when_ (v "x" <= i 0) [ return (i 0) ];
             when_ (v "b" %. "count" >= i 4) [ return (i (-1)) ];
             set_index (v "b" %. "data") (v "b" %. "count") (v "x");
             set_field (v "b") "count" (v "b" %. "count" + i 1);
             return (i 1);
           ];
       ])

let test_summarize_input_effect_pairs () =
  let ctx = Exec.create effect_prog in
  let mem, buf =
    Sval.alloc (sym_mem ())
      (Sval.scell_default effect_prog.Instr.tenv (Ty.Struct "Buf"))
  in
  let summary, _bindings, _key =
    Summary.summarize_at ctx ~frozen_below:0 ~mem ~fn:"push_if_positive"
      ~args:[ Sval.SPtr buf; Sval.SInt (Term.int_var "x") ]
  in
  (* Two paths: x <= 0 (no effect) and x > 0 (append; count is concrete
     0, so the capacity branch is pruned). *)
  check_int "cases" 2 (Summary.case_count summary);
  let effectful =
    List.filter (fun (c : Summary.case) -> c.Summary.writes <> []) summary.Summary.cases
  in
  check_int "one effectful case" 1 (List.length effectful);
  let c = List.hd effectful in
  (* The append pattern: a store at index 0 and the count bump (§5.3). *)
  check_int "two writes" 2 (List.length c.Summary.writes)

let test_summary_application_matches_inline () =
  (* Calling through a summary intercept must produce the same reachable
     outcomes as inlining. *)
  let caller =
    let open Golite.Dsl in
    Golite.Compile.compile
      (program
         [ struct_ "Buf" [ ("data", tarray tint 4); ("count", tint) ] ]
         [
           func "push_if_positive"
             ~params:[ ("b", tptr (tstruct "Buf")); ("x", tint) ]
             ~ret:(Some tint)
             [
               when_ (v "x" <= i 0) [ return (i 0) ];
               when_ (v "b" %. "count" >= i 4) [ return (i (-1)) ];
               set_index (v "b" %. "data") (v "b" %. "count") (v "x");
               set_field (v "b") "count" (v "b" %. "count" + i 1);
               return (i 1);
             ];
           func "push_twice"
             ~params:[ ("b", tptr (tstruct "Buf")); ("x", tint) ]
             ~ret:(Some tint)
             [
               decl_init "r1" tint (call "push_if_positive" [ v "b"; v "x" ]);
               decl_init "r2" tint (call "push_if_positive" [ v "b"; v "x" + i 1 ]);
               return (v "r1" + v "r2");
             ];
         ])
  in
  let run_mode with_summaries =
    let store = Summary.create_store () in
    let intercepts =
      if with_summaries then
        [ ("push_if_positive", Summary.intercept_for ~frozen_below:0 store "push_if_positive") ]
      else []
    in
    let ctx = Exec.create ~intercepts caller in
    let mem, buf =
      Sval.alloc (sym_mem ())
        (Sval.scell_default caller.Instr.tenv (Ty.Struct "Buf"))
    in
    let results =
      Exec.run ctx ~memory:mem ~pc:[] ~fn:"push_twice"
        ~args:[ Sval.SPtr buf; Sval.SInt (Term.int_var "x") ]
    in
    (* Project outcomes: evaluate the return term and final count under
       sample models x = -1, 0, 1, 5. *)
    List.map
      (fun sample ->
        let m = Smt.Model.add_int "x" sample Smt.Model.empty in
        List.filter_map
          (fun ((path : Exec.path), outcome) ->
            if List.for_all (Smt.Model.satisfies m) path.Exec.pc then
              match outcome with
              | Exec.Returned (Some (Sval.SInt t)) -> (
                  match Smt.Model.eval_total m t with
                  | Term.Int_const n -> Some n
                  | _ -> None)
              | _ -> None
            else None)
          results)
      [ -1; 0; 1; 5 ]
  in
  let with_sum = run_mode true and inline = run_mode false in
  check_bool "summary mode matches inline mode" true (with_sum = inline)

let test_summary_cache_hits () =
  let store = Summary.create_store () in
  let intercepts =
    [ ("push_if_positive", Summary.intercept_for ~frozen_below:0 store "push_if_positive") ]
  in
  let ctx = Exec.create ~intercepts effect_prog in
  let mem, buf =
    Sval.alloc (sym_mem ())
      (Sval.scell_default effect_prog.Instr.tenv (Ty.Struct "Buf"))
  in
  let run x =
    ignore
      (Exec.run ctx ~memory:mem ~pc:[] ~fn:"push_if_positive"
         ~args:[ Sval.SPtr buf; Sval.SInt (Term.int_var x) ])
  in
  run "x1";
  run "x2";
  run "x3";
  check_int "one miss" 1 store.Summary.misses;
  check_int "two hits" 2 store.Summary.hits

(* Summarization soundness against concrete replay: any model of a
   case's condition, run through the interpreter, must reproduce the
   case's recorded effect. *)
let prop_summary_sound =
  QCheck.Test.make ~name:"summary cases replay concretely" ~count:30
    QCheck.(int_range (-10) 10)
    (fun x ->
      let ctx = Exec.create effect_prog in
      let mem, buf =
        Sval.alloc (sym_mem ())
          (Sval.scell_default effect_prog.Instr.tenv (Ty.Struct "Buf"))
      in
      let summary, _, _ =
        Summary.summarize_at ctx ~frozen_below:0 ~mem ~fn:"push_if_positive"
          ~args:[ Sval.SPtr buf; Sval.SInt (Term.int_var "x") ]
      in
      let m = Smt.Model.add_int "x" x Smt.Model.empty in
      let matching =
        List.filter
          (fun (c : Summary.case) ->
            List.for_all
              (fun t ->
                Smt.Model.satisfies m
                  (Term.subst [ ("$c0", Term.int_var "x") ] t))
              c.Summary.cond)
          summary.Summary.cases
      in
      (* Exactly one case covers each input. *)
      List.length matching = 1
      &&
      let case = List.hd matching in
      (* Concrete run. *)
      let cmem, cbuf =
        Value.alloc Value.empty_memory
          (Value.mval_default effect_prog.Instr.tenv (Ty.Struct "Buf"))
      in
      match
        Minir.Interp.run effect_prog ~memory:cmem ~fn:"push_if_positive"
          ~args:[ Value.VPtr cbuf; Value.VInt x ]
      with
      | Minir.Interp.Returned (Some (Value.VInt r), final_mem) -> (
          (match case.Summary.outcome with
          | Summary.Ret (Some (Sval.SInt t)) ->
              Smt.Model.eval_total m (Term.subst [ ("$c0", Term.int_var "x") ] t)
              = Term.int r
          | _ -> false)
          &&
          (* Count field agrees. *)
          match Value.load_mval final_mem { cbuf with Value.path = [ 1 ] } with
          | Value.MInt concrete_count ->
              let summary_count =
                match
                  List.find_opt
                    (fun (w : Summary.write) -> w.Summary.w_path = [ 1 ])
                    case.Summary.writes
                with
                | Some w -> (
                    match w.Summary.w_cell with
                    | Sval.CInt t -> (
                        match Smt.Model.eval_total m t with
                        | Term.Int_const n -> n
                        | _ -> -99)
                    | _ -> -99)
                | None -> 0 (* unchanged *)
              in
              concrete_count = summary_count
          | _ -> false)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Manual layer specs & compareRaw                                    *)
(* ------------------------------------------------------------------ *)

let test_all_layers_verify () =
  let prog = Engine.Versions.compiled (Engine.Versions.fixed Engine.Versions.v2_0) in
  List.iter
    (fun (r : Refine.Layers.layer_report) ->
      if not (Refine.Layers.layer_ok r) then
        Alcotest.failf "layer %s: %s" r.Refine.Layers.layer
          (String.concat "; " r.Refine.Layers.mismatches);
      check_bool (r.Refine.Layers.layer ^ " explored paths") true
        (r.Refine.Layers.code_paths > 0))
    (Refine.Layers.check_all prog)

let test_layers_stable_across_versions () =
  (* Table 3's premise: the same dependency specs verify against every
     version. *)
  List.iter
    (fun cfg ->
      let prog = Engine.Versions.compiled (Engine.Versions.fixed cfg) in
      check_bool
        (cfg.Engine.Builder.version ^ " layers ok")
        true
        (List.for_all Refine.Layers.layer_ok (Refine.Layers.check_all prog)))
    [ Engine.Versions.v1_0; Engine.Versions.v3_0 ]

let test_layer_check_catches_wrong_spec () =
  (* A deliberately wrong spec (compareAbs that never answers PARTIAL)
     must be rejected. *)
  let bogus : Exec.intercept =
   fun ctx path args ->
    match args with
    | [ Sval.SPtr _; Sval.SInt _; Sval.SPtr _; Sval.SInt _ ] ->
        ignore ctx;
        [ (path, Exec.Returned (Some (Sval.SInt (Term.int 0)))) ]
    | _ -> Alcotest.fail "args"
  in
  let prog = Engine.Versions.compiled (Engine.Versions.fixed Engine.Versions.v3_0) in
  let enc = Dnstree.Encode.encode (Dnstree.Tree.build Spec.Fixtures.figure11_zone) in
  let mem, args, pc = Refine.Layers.layer_setup prog (Some enc) "compareNames" in
  let code_ctx = Exec.create prog in
  let code = Exec.run code_ctx ~memory:mem ~pc ~fn:"compareNames" ~args in
  let spec_ctx = Exec.create prog in
  let spec = bogus spec_ctx { Exec.pc; mem } args in
  let _, mismatches = Refine.Layers.compare_results mem code spec in
  check_bool "wrong spec rejected" true (mismatches <> [])

let test_compare_raw_refinement () =
  let r = Refine.Raw_name.check () in
  if not (Refine.Raw_name.ok r) then begin
    Refine.Raw_name.print r;
    Alcotest.fail "compareRaw refinement failed"
  end;
  check_bool "many cases" true (List.length r.Refine.Raw_name.cases > 100)

let test_compare_raw_concrete_sanity () =
  (* compareRaw agrees with the label-level comparison on concrete
     inputs, via the interpreter. *)
  let prog = Lazy.force Engine.Name_raw.compiled in
  let run n1 n2 =
    let mem, p1 =
      Value.alloc Value.empty_memory
        (Value.MArray
           (Array.map (fun b -> Value.MInt b) (Engine.Name_raw.wire_bytes n1)))
    in
    let mem, p2 =
      Value.alloc mem
        (Value.MArray
           (Array.map (fun b -> Value.MInt b) (Engine.Name_raw.wire_bytes n2)))
    in
    match
      Minir.Interp.run prog ~memory:mem ~fn:"compareRaw"
        ~args:[ Value.VPtr p1; Value.VPtr p2 ]
    with
    | Minir.Interp.Returned (Some (Value.VInt r), _) -> r
    | _ -> Alcotest.fail "compareRaw failed"
  in
  let n = Dns.Name.of_string_exn in
  check_int "exact" Dnstree.Layout.exactmatch
    (run (n "www.example.com") (n "www.example.com"));
  check_int "partial" Dnstree.Layout.partialmatch
    (run (n "www.example.com") (n "example.com"));
  check_int "nomatch siblings" Dnstree.Layout.nomatch
    (run (n "a.example.com") (n "b.example.com"));
  check_int "nomatch reversed ancestry" Dnstree.Layout.nomatch
    (run (n "example.com") (n "www.example.com"));
  (* The wire-format pitfall: "x3com" is one label whose bytes end like
     ".com"'s wire suffix; boundary tracking must reject it. *)
  check_int "no false suffix match" Dnstree.Layout.nomatch
    (run (n "x3com") (n "com"))

(* ------------------------------------------------------------------ *)
(* The executor itself is differentially tested: symbolically executing
   the whole engine on a fully *concrete* query must yield exactly one
   path whose response image equals the concrete interpreter's result. *)
(* ------------------------------------------------------------------ *)

let prop_symbolic_matches_concrete =
  QCheck.Test.make ~name:"symbolic execution ≡ interpreter on concrete inputs"
    ~count:25
    QCheck.(pair (int_range 0 300) (int_range 0 1_000))
    (fun (seed, qseed) ->
      let zone = Dns.Zonegen.generate ~seed (Dns.Name.of_string_exn "gen.example") in
      let rng = Random.State.make [| qseed |] in
      let q = Dns.Zonegen.random_query ~rng zone in
      QCheck.assume
        (Dns.Name.label_count q.Dns.Message.qname <= Dnstree.Layout.max_labels);
      let cfg = Engine.Versions.fixed Engine.Versions.v3_0 in
      let prog = Engine.Versions.compiled cfg in
      let enc = Dnstree.Encode.encode (Dnstree.Tree.build zone) in
      (* Concrete run through the interpreter. *)
      let concrete =
        match Engine.Versions.run_compiled prog enc q with
        | Engine.Versions.Response r -> r
        | Engine.Versions.Engine_panic m -> Alcotest.failf "panic: %s" m
      in
      (* Symbolic run with concrete arguments. *)
      let ctx = Exec.create prog in
      let mem = Sval.memory_of_concrete enc.Dnstree.Encode.memory in
      let mem, resp_ptr =
        Sval.alloc mem (Sval.scell_default prog.Instr.tenv (Ty.Struct "Response"))
      in
      let codes, qlen =
        Dnstree.Layout.encode_name enc.Dnstree.Encode.interner q.Dns.Message.qname
      in
      let mem, qname_ptr =
        Sval.alloc mem
          (Sval.CArray (Array.map (fun c -> Sval.CInt (Term.int c)) codes))
      in
      let results =
        Exec.run ctx ~memory:mem ~pc:[] ~fn:"resolve"
          ~args:
            [
              Sval.SPtr enc.Dnstree.Encode.root;
              Sval.SPtr resp_ptr;
              Sval.SPtr qname_ptr;
              Sval.SInt (Term.int qlen);
              Sval.SInt (Term.int (Dns.Rr.rtype_code q.Dns.Message.qtype));
            ]
      in
      match results with
      | [ (path, Exec.Returned None) ] ->
          (* Decode the symbolic response (all cells are concrete). *)
          let rec mval_of_cell : Sval.scell -> Value.mval = function
            | Sval.CInt (Term.Int_const n) -> Value.MInt n
            | Sval.CBool Term.True -> Value.MBool true
            | Sval.CBool Term.False -> Value.MBool false
            | Sval.CPtr p -> Value.MPtr p
            | Sval.CNull -> Value.MNull
            | Sval.CStruct cs -> Value.MStruct (Array.map mval_of_cell cs)
            | Sval.CArray cs -> Value.MArray (Array.map mval_of_cell cs)
            | c -> Alcotest.failf "non-concrete cell %a" Sval.pp_scell c
          in
          let cell = Sval.block_value path.Exec.mem resp_ptr.Value.block in
          let cmem, cptr = Value.alloc Value.empty_memory (mval_of_cell cell) in
          let symbolic = Dnstree.Encode.decode_response enc cmem cptr in
          Dns.Message.equal_response symbolic concrete
      | _ -> false)

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "symex"
    [
      ( "memory",
        [
          Alcotest.test_case "partial abstraction" `Quick
            test_partial_abstraction;
          Alcotest.test_case "cell navigation" `Quick test_cell_navigation;
          Alcotest.test_case "stack blocks excluded" `Quick
            test_stack_blocks_excluded_from_diff;
        ] );
      ( "executor",
        [
          Alcotest.test_case "fork on symbolic branch" `Quick
            test_fork_on_symbolic_branch;
          Alcotest.test_case "feasibility pruning" `Quick
            test_feasibility_pruning;
          Alcotest.test_case "symbolic index concretization" `Quick
            test_symbolic_index_concretization;
          Alcotest.test_case "nil panic path" `Quick test_nil_panic_path;
          Alcotest.test_case "intercept dispatch" `Quick test_intercept_dispatch;
        ] );
      ( "summarization",
        [
          Alcotest.test_case "input-effect pairs" `Quick
            test_summarize_input_effect_pairs;
          Alcotest.test_case "application matches inlining" `Quick
            test_summary_application_matches_inline;
          Alcotest.test_case "cache hits" `Quick test_summary_cache_hits;
        ]
        @ qcheck [ prop_summary_sound ] );
      ( "layers",
        [
          Alcotest.test_case "all layers verify" `Slow test_all_layers_verify;
          Alcotest.test_case "stable across versions" `Slow
            test_layers_stable_across_versions;
          Alcotest.test_case "wrong spec rejected" `Quick
            test_layer_check_catches_wrong_spec;
          Alcotest.test_case "compareRaw refinement (§6.3)" `Slow
            test_compare_raw_refinement;
          Alcotest.test_case "compareRaw concrete sanity" `Quick
            test_compare_raw_concrete_sanity;
        ] );
      ("soundness", qcheck [ prop_symbolic_matches_concrete ]);
    ]
