(* End-to-end verification tests: Specsym against the concrete spec,
   the refinement checker on corrected and buggy engines, summarization
   (incl. the Table-1 path structure on the Figure-11 tree), and safety
   checking (bug 9's reachable panic). *)

module Term = Smt.Term
module Model = Smt.Model
module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message
module Layout = Dnstree.Layout
module Encode = Dnstree.Encode
module Tree = Dnstree.Tree
module Rrlookup = Spec.Rrlookup
module Fixtures = Spec.Fixtures
module Versions = Engine.Versions
module Specsym = Refine.Specsym
module Check = Refine.Check
module Sval = Symex.Sval
module Exec = Symex.Exec

let n = Name.of_string_exn
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Specsym ≡ Rrlookup                                                 *)
(* ------------------------------------------------------------------ *)

(* Build the model corresponding to a concrete query. *)
let model_of_query coder (q : Message.query) : Model.t =
  let codes = Name.codes coder q.Message.qname in
  let m = Model.add_int "q.len" (List.length codes) Model.empty in
  List.fold_left
    (fun (m, j) c -> (Model.add_int (Printf.sprintf "q.n%d" j) c m, j + 1))
    (m, 0) codes
  |> fst

let specsym_agrees zone (q : Message.query) : bool =
  if Name.label_count q.Message.qname > Layout.max_labels then true
  else begin
    let enc = Encode.encode (Tree.build zone) in
    let coder = enc.Encode.interner.Layout.coder in
    let paths, _ =
      Specsym.paths zone coder ~qtype:q.Message.qtype
        ~max_labels:Layout.max_labels
    in
    let m = model_of_query coder q in
    match
      List.filter (fun (p : Specsym.spath) -> Specsym.cond_holds m p.Specsym.cond) paths
    with
    | [ p ] ->
        let got = Specsym.concretize_response coder m p.Specsym.resp in
        let want = Rrlookup.resolve zone q in
        Message.equal_response got want
    | [] -> false (* paths must cover the whole query space *)
    | _ :: _ :: _ -> false (* and be disjoint *)
  end

let test_specsym_reference () =
  let queries =
    [
      ("www.example.com", Rr.A);
      ("example.com", Rr.NS);
      ("example.com", Rr.MX);
      ("nosuch.example.com", Rr.A);
      ("x.wild.example.com", Rr.A);
      ("a.b.wild.example.com", Rr.MX);
      ("wild.example.com", Rr.A);
      ("c1.example.com", Rr.A);
      ("l1.example.com", Rr.A);
      ("host.sub.example.com", Rr.A);
      ("sub.example.com", Rr.NS);
      ("intocut.example.com", Rr.A);
      ("www.other.net", Rr.A);
      ("x.alias.example.com", Rr.A);
      ("a.example.com", Rr.TXT);
    ]
  in
  List.iter
    (fun (qname, qtype) ->
      check_bool
        (Printf.sprintf "specsym agrees on %s" qname)
        true
        (specsym_agrees Fixtures.reference_zone (Message.query (n qname) qtype)))
    queries

let prop_specsym_matches_rrlookup =
  QCheck.Test.make ~name:"Specsym ≡ Rrlookup on generated zones" ~count:25
    QCheck.(pair (int_range 0 500) (int_range 0 1_000))
    (fun (seed, qseed) ->
      let zone = Dns.Zonegen.generate ~seed (n "gen.example") in
      let rng = Random.State.make [| qseed |] in
      let q = Dns.Zonegen.random_query ~rng zone in
      specsym_agrees zone q)

(* ------------------------------------------------------------------ *)
(* Refinement checking: corrected engines verify clean                *)
(* ------------------------------------------------------------------ *)

let small_zone =
  Zone.make (n "example.com")
    [
      Rr.soa (n "example.com") ~mname:(n "ns1.example.com") ~serial:7;
      Rr.ns (n "example.com") (n "ns1.example.com");
      Rr.a (n "ns1.example.com") 100;
      Rr.a (n "www.example.com") 1;
      Rr.cname (n "alias.example.com") (n "www.example.com");
      Rr.a (n "*.wild.example.com") 5;
    ]

let test_fixed_verifies_clean () =
  List.iter
    (fun qtype ->
      let r =
        Check.check_version (Versions.fixed Versions.v3_0) small_zone ~qtype
      in
      if not (Check.ok r) then
        Alcotest.failf "expected clean verification:@.%a" Check.pp_report r;
      check_bool "stateless" true r.Check.stateless;
      check_bool "explored engine paths" true (r.Check.engine_paths > 3);
      check_bool "explored spec paths" true (r.Check.spec_paths > 3))
    [ Rr.A; Rr.CNAME ]

let test_fixed_verifies_clean_inline_mode () =
  let r =
    Check.check_version ~mode:Check.Inline_all (Versions.fixed Versions.v1_0)
      small_zone ~qtype:Rr.A
  in
  if not (Check.ok r) then
    Alcotest.failf "expected clean verification:@.%a" Check.pp_report r

(* ------------------------------------------------------------------ *)
(* Refinement checking: seeded bugs are found, with real witnesses    *)
(* ------------------------------------------------------------------ *)

let expect_caught ?(mode = Check.With_summaries) cfg zone qtype =
  let r = Check.check_version ~mode cfg zone ~qtype in
  check_bool
    (Printf.sprintf "%s/%s: verification must fail" cfg.Engine.Builder.version
       (Rr.rtype_to_string qtype))
    false (Check.ok r);
  (* Every reported mismatch must replay to a genuine divergence. *)
  List.iter
    (fun (m : Check.mismatch) ->
      let engine = Engine.Versions.run cfg zone m.Check.query in
      let spec = Rrlookup.resolve zone m.Check.query in
      match engine with
      | Engine.Versions.Engine_panic _ -> ()
      | Engine.Versions.Response r' ->
          check_bool "witness diverges concretely" false
            (Message.equal_response r' spec))
    r.Check.mismatches;
  r

let test_bug1_caught () =
  let w = Fixtures.witness 1 in
  ignore (expect_caught Versions.v1_0 w.Fixtures.zone Rr.MX)

let test_bug3_caught () =
  let w = Fixtures.witness 3 in
  ignore (expect_caught Versions.v1_0 w.Fixtures.zone Rr.MX)

let test_bug6_caught () =
  let w = Fixtures.witness 6 in
  ignore (expect_caught Versions.v2_0 w.Fixtures.zone Rr.A)

let test_bug8_caught () =
  let w = Fixtures.witness 8 in
  ignore (expect_caught Versions.v3_0 w.Fixtures.zone Rr.A)

let test_bug9_panic_found () =
  let w = Fixtures.witness 9 in
  let r = Check.check_version Versions.dev w.Fixtures.zone ~qtype:Rr.A in
  check_bool "a reachable panic is reported" true (r.Check.panics <> []);
  (* The panic witness replays to a concrete crash. *)
  List.iter
    (fun (p : Check.panic_report) ->
      match Engine.Versions.run Versions.dev w.Fixtures.zone p.Check.panic_query with
      | Engine.Versions.Engine_panic _ -> ()
      | Engine.Versions.Response _ ->
          Alcotest.fail "panic witness must crash concretely")
    r.Check.panics

(* ------------------------------------------------------------------ *)
(* Summarization: the Table-1 experiment (Figure 11 tree)             *)
(* ------------------------------------------------------------------ *)

let tree_search_paths () =
  let enc = Encode.encode (Tree.build Fixtures.figure11_zone) in
  let prog = Versions.compiled (Versions.fixed Versions.v3_0) in
  let ctx = Exec.create prog in
  let mem0 = Sval.memory_of_concrete enc.Encode.memory in
  let mem0, stack_ptr =
    Sval.alloc mem0 (Sval.scell_default prog.Minir.Instr.tenv (Minir.Ty.Struct "NodeStack"))
  in
  let mem0, res_ptr =
    Sval.alloc mem0
      (Sval.scell_default prog.Minir.Instr.tenv (Minir.Ty.Struct "SearchResult"))
  in
  let mem0, qname_ptr =
    Sval.alloc mem0
      (Sval.CArray
         (Array.init Layout.max_labels (fun j -> Sval.CInt (Specsym.qsym_label j))))
  in
  let coder = enc.Encode.interner.Layout.coder in
  let pc =
    Specsym.under coder (Zone.origin Fixtures.figure11_zone)
    :: Specsym.domain_constraints ~max_labels:Layout.max_labels
  in
  let args =
    [
      Sval.SPtr enc.Encode.root;
      Sval.SPtr stack_ptr;
      Sval.SPtr res_ptr;
      Sval.SPtr qname_ptr;
      Sval.SInt Specsym.qsym_len;
      Sval.SBool Term.false_;
    ]
  in
  (Exec.run ctx ~memory:mem0 ~pc ~fn:"treeSearch" ~args, res_ptr, enc)

let test_table1_path_count () =
  let results, _, _ = tree_search_paths () in
  (* The paper's Table 1 lists exactly 14 execution paths (P0–P13) for
     TreeSearch on the Figure-11 tree. *)
  check_int "TreeSearch paths on the Figure-11 tree" 14 (List.length results);
  List.iter
    (fun ((_ : Exec.path), outcome) ->
      match outcome with
      | Exec.Returned None -> ()
      | Exec.Returned (Some _) -> Alcotest.fail "treeSearch is void"
      | Exec.Panicked m -> Alcotest.failf "treeSearch panicked: %s" m)
    results

let test_table1_witnesses () =
  (* Each path condition is satisfiable and its model is a qname that,
     replayed concretely, reaches the recorded result node. *)
  let results, res_ptr, enc = tree_search_paths () in
  let coder = enc.Encode.interner.Layout.coder in
  List.iter
    (fun ((path : Exec.path), _) ->
      match Smt.Solver.check path.Exec.pc with
      | Smt.Solver.Sat m ->
          let q = Specsym.query_of_model coder m ~qtype:Rr.A in
          check_bool "witness under origin" true
            (Name.is_under
               ~ancestor:(Zone.origin Fixtures.figure11_zone)
               q.Message.qname);
          (* The symbolic result node pointer is concrete. *)
          let cell = Sval.load_cell path.Exec.mem res_ptr in
          (match cell with
          | Sval.CStruct [| node; _kind |] ->
              check_bool "result node concrete" true
                (match node with Sval.CPtr _ | Sval.CNull -> true | _ -> false)
          | _ -> Alcotest.fail "malformed SearchResult")
      | _ -> Alcotest.fail "path condition must be satisfiable")
    results

(* ------------------------------------------------------------------ *)
(* Summary reuse across call sites                                    *)
(* ------------------------------------------------------------------ *)

let test_summary_cache_effective () =
  let r =
    Check.check_version (Versions.fixed Versions.v2_0) small_zone ~qtype:Rr.A
  in
  if not (Check.ok r) then
    Alcotest.failf "expected clean verification:@.%a" Check.pp_report r;
  (* At least some layers were summarized. *)
  check_bool "summaries computed" true (r.Check.summary_cases <> []);
  List.iter
    (fun (fn, cases) ->
      check_bool (fn ^ " has cases") true (cases > 0))
    r.Check.summary_cases

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "verify"
    [
      ( "specsym",
        [ Alcotest.test_case "agrees on reference zone" `Quick test_specsym_reference ]
        @ qcheck [ prop_specsym_matches_rrlookup ] );
      ( "refinement",
        [
          Alcotest.test_case "fixed engine verifies clean" `Slow
            test_fixed_verifies_clean;
          Alcotest.test_case "inline mode verifies clean" `Slow
            test_fixed_verifies_clean_inline_mode;
          Alcotest.test_case "bug 1 caught" `Slow test_bug1_caught;
          Alcotest.test_case "bug 3 caught" `Slow test_bug3_caught;
          Alcotest.test_case "bug 6 caught" `Slow test_bug6_caught;
          Alcotest.test_case "bug 8 caught" `Slow test_bug8_caught;
          Alcotest.test_case "bug 9 panic found" `Slow test_bug9_panic_found;
        ] );
      ( "summarization",
        [
          Alcotest.test_case "Table-1 path count (14)" `Quick
            test_table1_path_count;
          Alcotest.test_case "Table-1 witnesses" `Quick test_table1_witnesses;
          Alcotest.test_case "summary cache effective" `Slow
            test_summary_cache_effective;
        ] );
    ]
