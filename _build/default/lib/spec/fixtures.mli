(* Shared zone fixtures.

   [figure11_zone] materialises the example domain tree of the paper's
   Figure 11 (used by the Table-1 experiment); [reference_zone] is the
   kitchen-sink zone exercising every resolution scenario; the bug_*
   zones are the minimal witnesses for each Table-2 bug. *)

module Name = Dns.Name
module Label = Dns.Label
module Rr = Dns.Rr
module Zone = Dns.Zone
val n : string -> Name.t
val figure11_origin : Name.t
val figure11_zone : Zone.t
val reference_origin : Name.t
val reference_zone : Zone.t
type witness = {
  bug_index : int;
  zone : Zone.t;
  query : Dns.Message.query;
  note : string;
}
val q : string -> Dns.Rr.rtype -> Dns.Message.query
val base_records : Dns.Name.t -> Rr.t list
val witnesses : witness list
val witness : int -> witness
