(* Shared zone fixtures.

   [figure11_zone] materialises the example domain tree of the paper's
   Figure 11 (used by the Table-1 experiment); [reference_zone] is the
   kitchen-sink zone exercising every resolution scenario; the bug_*
   zones are the minimal witnesses for each Table-2 bug. *)

module Name = Dns.Name
module Label = Dns.Label
module Rr = Dns.Rr
module Zone = Dns.Zone

let n = Name.of_string_exn

(* Figure 11: example.com with children www and cs, and cs's children
   web and zoo. *)
let figure11_origin = n "example.com"

let figure11_zone =
  Zone.make figure11_origin
    [
      Rr.soa figure11_origin ~mname:(n "ns1.example.com") ~serial:11;
      Rr.a (n "www.example.com") 1;
      Rr.a (n "cs.example.com") 2;
      Rr.a (n "web.cs.example.com") 3;
      Rr.a (n "zoo.cs.example.com") 4;
    ]

let reference_origin = n "example.com"

let reference_zone =
  Zone.make reference_origin
    [
      Rr.soa reference_origin ~mname:(n "ns1.example.com") ~serial:1;
      Rr.ns reference_origin (n "ns1.example.com");
      Rr.a (n "ns1.example.com") 100;
      Rr.a (n "www.example.com") 1;
      Rr.aaaa (n "www.example.com") 2;
      Rr.mx reference_origin 10 (n "mail.example.com");
      Rr.a (n "mail.example.com") 3;
      Rr.a (n "deep.a.example.com") 4;
      Rr.a (n "*.wild.example.com") 5;
      Rr.mx (n "*.wild.example.com") 20 (n "mail.example.com");
      Rr.cname (n "*.alias.example.com") (n "www.example.com");
      Rr.cname (n "c1.example.com") (n "c2.example.com");
      Rr.cname (n "c2.example.com") (n "www.example.com");
      Rr.cname (n "l1.example.com") (n "l2.example.com");
      Rr.cname (n "l2.example.com") (n "l1.example.com");
      Rr.cname (n "ext.example.com") (n "cdn.other.net");
      Rr.ns (n "sub.example.com") (n "ns.sub.example.com");
      Rr.ns (n "sub.example.com") (n "ns-ext.other.net");
      Rr.a (n "ns.sub.example.com") 6;
      Rr.a (n "host.sub.example.com") 7;
      Rr.cname (n "intocut.example.com") (n "host.sub.example.com");
      Rr.txt (n "www.example.com") "hello";
    ]

(* ------------------------------------------------------------------ *)
(* Minimal bug-witness zones and queries (Table 2)                    *)
(* ------------------------------------------------------------------ *)

type witness = {
  bug_index : int;
  zone : Zone.t;
  query : Dns.Message.query;
  note : string;
}

let q name qtype = Dns.Message.query (n name) qtype

let base_records origin =
  [
    Rr.soa origin ~mname:(n "ns1.example.com") ~serial:2;
    Rr.ns origin (n "ns1.example.com");
    Rr.a (n "ns1.example.com") 100;
  ]

let witnesses : witness list =
  let origin = reference_origin in
  [
    {
      bug_index = 1;
      zone =
        Zone.make origin (base_records origin @ [ Rr.a (n "www.example.com") 1 ]);
      query = q "www.example.com" Rr.MX;
      note = "NODATA response must carry AA";
    };
    {
      bug_index = 2;
      zone =
        Zone.make origin (base_records origin @ [ Rr.a (n "www.example.com") 1 ]);
      query = q "www.example.com" Rr.A;
      note = "positive answer must not carry apex NS authority";
    };
    {
      bug_index = 3;
      zone =
        Zone.make origin
          (base_records origin
          @ [
              Rr.mx (n "www.example.com") 10 (n "mail.example.com");
              Rr.txt (n "www.example.com") "decoy";
              Rr.a (n "mail.example.com") 3;
            ]);
      query = q "www.example.com" Rr.MX;
      note = "MX query must match the MX rrset, not TXT";
    };
    {
      bug_index = 4;
      zone =
        Zone.make origin
          (base_records origin
          @ [
              Rr.ns (n "sub.example.com") (n "ns1.sub.example.com");
              Rr.ns (n "sub.example.com") (n "ns2.sub.example.com");
              Rr.a (n "ns1.sub.example.com") 6;
              Rr.a (n "ns2.sub.example.com") 7;
            ]);
      query = q "host.sub.example.com" Rr.A;
      note = "referral glue must cover every NS target";
    };
    {
      bug_index = 5;
      zone =
        Zone.make origin
          (base_records origin
          @ [
              Rr.mx (n "*.wild.example.com") 20 (n "mail.example.com");
              Rr.a (n "mail.example.com") 3;
            ]);
      query = q "x.wild.example.com" Rr.MX;
      note = "wildcard MX answers must get additional glue";
    };
    {
      bug_index = 6;
      zone =
        Zone.make origin
          (base_records origin
          @ [
              (* Three children of wild.example.com: the balanced sibling
                 BST roots at a concrete child, so a shallow wildcard scan
                 misses '*'. *)
              Rr.a (n "*.wild.example.com") 5;
              Rr.a (n "aa.wild.example.com") 6;
              Rr.a (n "bb.wild.example.com") 7;
            ]);
      query = q "zz.wild.example.com" Rr.A;
      note = "wildcard must be found among several siblings";
    };
    {
      bug_index = 7;
      zone =
        Zone.make origin
          (base_records origin
          @ [
              Rr.mx origin 10 (n "mail.sub.example.com");
              Rr.ns (n "sub.example.com") (n "ns1.sub.example.com");
              Rr.a (n "ns1.sub.example.com") 6;
              Rr.a (n "mail.sub.example.com") 7;
            ]);
      query = q "example.com" Rr.MX;
      note = "no glue for targets occluded by a delegation cut";
    };
    {
      bug_index = 8;
      zone =
        Zone.make origin
          (base_records origin
          @ [
              (* wild.example.com is an empty non-terminal with a
                 wildcard child. *)
              Rr.a (n "*.wild.example.com") 5;
            ]);
      query = q "wild.example.com" Rr.A;
      note = "empty non-terminal is NODATA, not wildcard synthesis";
    };
    {
      bug_index = 9;
      zone =
        Zone.make origin
          (base_records origin @ [ Rr.a (n "*.wild.example.com") 5 ]);
      query = q "a.b.wild.example.com" Rr.A;
      note = "multi-label wildcard expansion must not crash";
    };
  ]

let witness bug_index = List.find (fun w -> w.bug_index = bug_index) witnesses
