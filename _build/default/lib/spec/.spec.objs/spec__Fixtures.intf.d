lib/spec/fixtures.mli: Dns
