lib/spec/fixtures.ml: Dns List
