lib/spec/rrlookup.ml: Dns List
