lib/spec/rrlookup.mli: Dns
