(* The top-level specification of authoritative resolution (§6.1).

   `resolve` is the executable ground truth every engine version is
   verified (and differentially tested) against. It follows RFC 1034
   §4.3.2 resolution — delegation cuts, exact matches, CNAME chasing,
   wildcard synthesis, NODATA vs NXDOMAIN — in the GRoot/SCALE style of
   iterative filtering over the zone's record list (Figure 9), never
   touching the engine's domain-tree data structures.

   Conventions fixed by this specification (the engine must agree):
   - out-of-zone qname → REFUSED;
   - referrals (qname at or below a delegation cut) are never
     authoritative: AA clear, NS records of the *highest* cut in the
     authority section, in-zone A/AAAA glue for the NS targets in the
     additional section;
   - NODATA and NXDOMAIN carry the zone SOA in the authority section and
     are authoritative;
   - CNAME records are followed within the zone, with a chain bound of
     [max_cname_chain]; exceeding it is SERVFAIL (loop protection);
   - MX / SRV / NS answers trigger additional-section processing for
     in-zone, non-occluded targets;
   - the AA flag is set unless the final state is a pure referral. *)

module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message

let max_cname_chain = 8

(* The additional section is best-effort and capped, like a UDP-limited
   responder; the engine's capacity constant must agree (asserted in the
   test suite). *)
let max_additional = 8

let cap_additional l =
  List.filteri (fun i _ -> i < max_additional) l

(* The highest delegation cut at-or-below the apex on the path to
   [name], excluding the apex itself: RFC resolution descends from the
   top and stops at the first cut. *)
let highest_cut (z : Zone.t) (name : Name.t) : Name.t option =
  let apex_len = Name.label_count (Zone.origin z) in
  let total = Name.label_count name in
  let rec walk k =
    if k > total then None
    else
      let candidate = Name.suffix name k in
      if Zone.is_delegation z candidate then Some candidate else walk (k + 1)
  in
  walk (apex_len + 1)

(* In-zone glue for a delegation target: its A/AAAA records, if present. *)
let glue_for_target (z : Zone.t) (target : Name.t) : Rr.t list =
  if Name.is_under ~ancestor:(Zone.origin z) target then
    Zone.records_at_typed z target Rr.A @ Zone.records_at_typed z target Rr.AAAA
  else []

let referral (z : Zone.t) (cut : Name.t) ~(answer : Rr.t list) :
    Message.response =
  let ns_records = Zone.records_at_typed z cut Rr.NS in
  let additional =
    List.concat_map
      (fun (r : Rr.t) ->
        match Rr.rdata_target r.Rr.rdata with
        | Some target -> glue_for_target z target
        | None -> [])
      ns_records
  in
  {
    Message.rcode = Message.NoError;
    aa = answer <> []; (* a CNAME prefix chased into the cut is authoritative *)
    answer;
    authority = ns_records;
    additional = cap_additional additional;
  }

let soa_authority (z : Zone.t) : Rr.t list =
  match Zone.soa_record z with Some r -> [ r ] | None -> []

(* Additional-section processing for positive answers: A/AAAA of the
   rdata targets of MX / SRV / NS answers, when those targets live in
   the zone and are not hidden behind a delegation cut. *)
let additional_for_answers (z : Zone.t) (answers : Rr.t list) : Rr.t list =
  cap_additional
    (List.concat_map
       (fun (r : Rr.t) ->
         match (r.Rr.rtype, Rr.rdata_target r.Rr.rdata) with
         | (Rr.MX | Rr.SRV | Rr.NS), Some target ->
             if highest_cut z target = None then glue_for_target z target
             else []
         | _ -> [])
       answers)

(* Records at the *source* node [node], synthesized to owner [owner]
   (identity for exact matches; qname for wildcard synthesis). *)
let synthesize owner (rs : Rr.t list) : Rr.t list =
  List.map (fun (r : Rr.t) -> { r with Rr.rname = owner }) rs

(* The closest encloser: the longest existing ancestor of [name]
   (existing = exact node or empty non-terminal). Always defined when
   the apex exists. *)
let closest_encloser (z : Zone.t) (name : Name.t) : Name.t =
  let total = Name.label_count name in
  let apex_len = Name.label_count (Zone.origin z) in
  let rec walk k best =
    if k > total then best
    else
      let candidate = Name.suffix name k in
      if Zone.node_exists z candidate then walk (k + 1) candidate else best
  in
  walk (apex_len + 1) (Zone.origin z)

type node_outcome =
  | Answer of Rr.t list (* records of qtype at the node *)
  | Cname of Rr.t (* CNAME present, qtype different *)
  | Nodata
  | Nonexistent

(* Inspect the node owning [node_name] for [qtype]. *)
let inspect_node (z : Zone.t) (node_name : Name.t) (qtype : Rr.rtype) :
    node_outcome =
  let here = Zone.records_at z node_name in
  if here = [] then
    if Zone.node_exists z node_name then Nodata (* empty non-terminal *)
    else Nonexistent
  else
    let cnames =
      List.filter (fun (r : Rr.t) -> Rr.equal_rtype r.Rr.rtype Rr.CNAME) here
    in
    match cnames with
    | c :: _ when not (Rr.equal_rtype qtype Rr.CNAME) -> Cname c
    | _ -> (
        match
          List.filter (fun (r : Rr.t) -> Rr.equal_rtype r.Rr.rtype qtype) here
        with
        | [] -> Nodata
        | rs -> Answer rs)

let resolve (z : Zone.t) (q : Message.query) : Message.response =
  if not (Name.is_under ~ancestor:(Zone.origin z) q.Message.qname) then
    Message.response Message.Refused
  else
    let rec step qname (acc_answer : Rr.t list) budget : Message.response =
      if budget = 0 then
        { (Message.response Message.ServFail) with Message.answer = acc_answer }
      else
        match highest_cut z qname with
        | Some cut -> referral z cut ~answer:acc_answer
        | None -> (
            let conclude_positive answers =
              {
                Message.rcode = Message.NoError;
                aa = true;
                answer = acc_answer @ answers;
                authority = [];
                additional = additional_for_answers z answers;
              }
            in
            let nodata () =
              {
                Message.rcode = Message.NoError;
                aa = true;
                answer = acc_answer;
                authority = soa_authority z;
                additional = [];
              }
            in
            let follow_cname (c : Rr.t) ~owner =
              let c = { c with Rr.rname = owner } in
              match Rr.rdata_target c.Rr.rdata with
              | Some target
                when Name.is_under ~ancestor:(Zone.origin z) target ->
                  step target (acc_answer @ [ c ]) (budget - 1)
              | Some _ | None ->
                  (* Target out of zone: the recursor takes over. *)
                  {
                    Message.rcode = Message.NoError;
                    aa = true;
                    answer = acc_answer @ [ c ];
                    authority = [];
                    additional = [];
                  }
            in
            match inspect_node z qname q.Message.qtype with
            | Answer rs -> conclude_positive rs
            | Cname c -> follow_cname c ~owner:qname
            | Nodata -> nodata ()
            | Nonexistent -> (
                (* Wildcard synthesis at the closest encloser. *)
                let ce = closest_encloser z qname in
                let wc = Name.child Dns.Label.wildcard ce in
                match inspect_node z wc q.Message.qtype with
                | Answer rs -> conclude_positive (synthesize qname rs)
                | Cname c -> follow_cname c ~owner:qname
                | Nodata ->
                    if Zone.records_at z wc <> [] || Zone.node_exists z wc then
                      nodata ()
                    else
                      {
                        Message.rcode = Message.NXDomain;
                        aa = true;
                        answer = acc_answer;
                        authority = soa_authority z;
                        additional = [];
                      }
                | Nonexistent ->
                    {
                      Message.rcode = Message.NXDomain;
                      aa = true;
                      answer = acc_answer;
                      authority = soa_authority z;
                      additional = [];
                    }))
    in
    step q.Message.qname [] max_cname_chain
