(* The top-level specification of authoritative resolution (§6.1).

   `resolve` is the executable ground truth every engine version is
   verified (and differentially tested) against. It follows RFC 1034
   §4.3.2 resolution — delegation cuts, exact matches, CNAME chasing,
   wildcard synthesis, NODATA vs NXDOMAIN — in the GRoot/SCALE style of
   iterative filtering over the zone's record list (Figure 9), never
   touching the engine's domain-tree data structures.

   Conventions fixed by this specification (the engine must agree):
   - out-of-zone qname → REFUSED;
   - referrals (qname at or below a delegation cut) are never
     authoritative: AA clear, NS records of the *highest* cut in the
     authority section, in-zone A/AAAA glue for the NS targets in the
     additional section;
   - NODATA and NXDOMAIN carry the zone SOA in the authority section and
     are authoritative;
   - CNAME records are followed within the zone, with a chain bound of
     [max_cname_chain]; exceeding it is SERVFAIL (loop protection);
   - MX / SRV / NS answers trigger additional-section processing for
     in-zone, non-occluded targets;
   - the AA flag is set unless the final state is a pure referral. *)

module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message
val max_cname_chain : int
val max_additional : int
val cap_additional : 'a list -> 'a list
val highest_cut : Zone.t -> Name.t -> Name.t option
val glue_for_target : Zone.t -> Name.t -> Rr.t list
val referral : Zone.t -> Name.t -> answer:Rr.t list -> Message.response
val soa_authority : Zone.t -> Rr.t list
val additional_for_answers : Zone.t -> Rr.t list -> Rr.t list
val synthesize : Dns.Name.t -> Rr.t list -> Rr.t list
val closest_encloser : Zone.t -> Name.t -> Name.t
type node_outcome =
    Answer of Rr.t list
  | Cname of Rr.t
  | Nodata
  | Nonexistent
val inspect_node : Zone.t -> Name.t -> Rr.rtype -> node_outcome
val resolve : Zone.t -> Message.query -> Message.response
