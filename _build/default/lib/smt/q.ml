(* Exact rational arithmetic over native integers.

   The simplex core needs exact rationals. Coefficients in DNS-V path
   conditions are tiny (label codes, array indices, lengths), so native
   63-bit integers with eager gcd normalization are ample. We still guard
   multiplication overflow with a checked multiply so that a silent wrap
   can never turn an UNSAT answer into SAT. *)

type t = { num : int; den : int }
(* Invariant: den > 0 and gcd(|num|, den) = 1. *)

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let c = a * b in
    if c / b <> a then raise Overflow else c

let make num den =
  if den = 0 then invalid_arg "Q.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  if num = 0 then { num = 0; den = 1 }
  else
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den
let is_zero t = t.num = 0
let is_integer t = t.den = 1

let add a b =
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  make (checked_mul a.num db + checked_mul b.num da) (checked_mul a.den db)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (checked_mul a.num b.num) (checked_mul a.den b.den)

let inv a =
  if a.num = 0 then invalid_arg "Q.inv: zero";
  make a.den a.num

let div a b = mul a (inv b)
let compare a b = compare (sub a b).num 0
let equal a b = a.num = b.num && a.den = b.den
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b
let sign a = compare a zero

(* Floor and ceiling as integers; used by branch-and-bound. *)
let floor a =
  if a.num >= 0 then a.num / a.den
  else if a.num mod a.den = 0 then a.num / a.den
  else (a.num / a.den) - 1

let ceil a = -floor (neg a)

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Q.to_int_exn: not an integer";
  a.num

let pp fmt a =
  if a.den = 1 then Format.fprintf fmt "%d" a.num
  else Format.fprintf fmt "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
