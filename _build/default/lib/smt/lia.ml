(* Linear integer arithmetic decision procedure: branch-and-bound over the
   rational simplex, plus disequality splitting.

   Conjunctions of `Linear.atom`s are decided here. Integrality is
   enforced by branching  x ≤ ⌊v⌋ ∨ x ≥ ⌈v⌉  on a fractional variable of
   the relaxation; disequalities split as  lin ≤ −1 ∨ lin ≥ 1. A depth cap
   returns [Unknown] rather than diverging on adversarial unbounded
   instances (never reached by DNS-V's bounded-list encodings). *)

module String_map = Map.Make (String)

type model = int String_map.t
type result = Sat of model | Unsat | Unknown

let max_depth = 10_000

(* A constraint row: Σ ci·xi ≤ b or Σ ci·xi = b with named variables. *)
type row = { coeffs : (int * string) list; rhs : int; is_eq : bool }

let pp_model fmt m =
  String_map.iter (fun v n -> Format.fprintf fmt "%s=%d " v n) m

exception Trivially_unsat

let check (atoms : Linear.atom list) : result =
  (* Partition atoms; constant atoms decide immediately. *)
  let rows = ref [] and neqs = ref [] in
  let add_row is_eq lin =
    match Linear.const_value lin with
    | Some c -> if (is_eq && c <> 0) || ((not is_eq) && c > 0) then raise Trivially_unsat
    | None ->
        let coeffs = Linear.fold_coeffs (fun acc v c -> (c, v) :: acc) [] lin in
        rows := { coeffs; rhs = -Linear.coeff_free lin; is_eq } :: !rows
  in
  try
    List.iter
      (function
        | Linear.Le_zero lin -> add_row false lin
        | Linear.Eq_zero lin -> add_row true lin
        | Linear.Neq_zero lin -> (
            match Linear.const_value lin with
            | Some 0 -> raise Trivially_unsat
            | Some _ -> ()
            | None -> neqs := lin :: !neqs))
      atoms;
    let rows = !rows and neqs = !neqs in
    (* Variable index assignment. *)
    let index = Hashtbl.create 16 in
    let names = ref [] in
    let intern v =
      match Hashtbl.find_opt index v with
      | Some i -> i
      | None ->
          let i = Hashtbl.length index in
          Hashtbl.add index v i;
          names := v :: !names;
          i
    in
    List.iter (fun r -> List.iter (fun (_, v) -> ignore (intern v)) r.coeffs) rows;
    List.iter (fun lin -> List.iter (fun v -> ignore (intern v)) (Linear.vars lin)) neqs;
    let nvars = Hashtbl.length index in
    let names = Array.of_list (List.rev !names) in
    (* Branch state: per-variable integer bounds plus extra ≤-rows from
       disequality splits. *)
    let merge_bound (b : Simplex.bound) ~lo ~hi : Simplex.bound option =
      let lower =
        match (b.lower, lo) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (Q.max a b)
      and upper =
        match (b.upper, hi) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (Q.min a b)
      in
      match (lower, upper) with
      | Some l, Some u when Q.gt l u -> None
      | lower, upper -> Some { Simplex.lower; upper }
    in
    let solve_relaxation var_bounds extra_rows =
      let all_rows = extra_rows @ rows in
      let simplex_rows =
        List.map
          (fun r -> List.map (fun (c, v) -> (Q.of_int c, intern v)) r.coeffs)
          all_rows
      in
      let bound_of i =
        if i < nvars then var_bounds.(i)
        else
          let r = List.nth all_rows (i - nvars) in
          let rhs = Q.of_int r.rhs in
          if r.is_eq then { Simplex.lower = Some rhs; upper = Some rhs }
          else { Simplex.lower = None; upper = Some rhs }
      in
      let s = Simplex.create ~nvars ~rows:simplex_rows ~bound_of in
      Simplex.check s
    in
    let rec branch var_bounds extra_rows pending_neqs depth =
      if depth > max_depth then Unknown
      else
        match solve_relaxation var_bounds extra_rows with
        | Simplex.Infeasible -> Unsat
        | Simplex.Feasible beta -> (
            (* Find a fractional original variable. *)
            let frac = ref None in
            for i = 0 to nvars - 1 do
              if !frac = None && not (Q.is_integer beta.(i)) then frac := Some i
            done;
            match !frac with
            | Some i -> (
                let v = beta.(i) in
                let left = Array.copy var_bounds in
                let right = Array.copy var_bounds in
                match
                  ( merge_bound left.(i) ~lo:None ~hi:(Some (Q.of_int (Q.floor v))),
                    merge_bound right.(i) ~lo:(Some (Q.of_int (Q.ceil v))) ~hi:None )
                with
                | None, None -> Unsat
                | Some bl, None ->
                    left.(i) <- bl;
                    branch left extra_rows pending_neqs (depth + 1)
                | None, Some br ->
                    right.(i) <- br;
                    branch right extra_rows pending_neqs (depth + 1)
                | Some bl, Some br -> (
                    left.(i) <- bl;
                    right.(i) <- br;
                    match branch left extra_rows pending_neqs (depth + 1) with
                    | Unsat -> branch right extra_rows pending_neqs (depth + 1)
                    | (Sat _ | Unknown) as r -> r))
            | None -> (
                (* Integral; validate disequalities. *)
                let env v = Q.to_int_exn beta.(Hashtbl.find index v) in
                match
                  List.find_opt (fun lin -> Linear.eval env lin = 0) pending_neqs
                with
                | None ->
                    let m =
                      Array.to_seq (Array.sub beta 0 nvars)
                      |> Seq.mapi (fun i q -> (names.(i), Q.to_int_exn q))
                      |> String_map.of_seq
                    in
                    Sat m
                | Some lin -> (
                    (* lin ≠ 0 over ℤ: lin ≤ −1 ∨ −lin ≤ −1 *)
                    let remaining =
                      List.filter (fun l -> not (l == lin)) pending_neqs
                    in
                    let mk lin' =
                      let coeffs =
                        Linear.fold_coeffs (fun acc v c -> (c, v) :: acc) [] lin'
                      in
                      { coeffs; rhs = -Linear.coeff_free lin' - 1; is_eq = false }
                    in
                    match
                      branch var_bounds (mk lin :: extra_rows) remaining (depth + 1)
                    with
                    | Unsat ->
                        branch var_bounds
                          (mk (Linear.neg lin) :: extra_rows)
                          remaining (depth + 1)
                    | (Sat _ | Unknown) as r -> r)))
    in
    let init_bounds = Array.make nvars Simplex.no_bound in
    branch init_bounds [] neqs 0
  with Trivially_unsat -> Unsat
