(* Satisfying assignments returned by the solver.

   Variables absent from the assignment are unconstrained; they default to
   0 / false, which callers rely on when concretizing counterexample
   queries. *)

module String_map = Map.Make (String)

type t = Term.value String_map.t

let empty = String_map.empty
let add name v t = String_map.add name v t
let add_int name n t = add name (Term.VInt n) t
let add_bool name b t = add name (Term.VBool b) t
let find_opt name t = String_map.find_opt name t

let get_int ?(default = 0) name t =
  match find_opt name t with
  | Some (Term.VInt n) -> n
  | Some (Term.VBool _) -> Term.sort_error "Model.get_int: %s is boolean" name
  | None -> default

let get_bool ?(default = false) name t =
  match find_opt name t with
  | Some (Term.VBool b) -> b
  | Some (Term.VInt _) -> Term.sort_error "Model.get_bool: %s is integer" name
  | None -> default

let bindings t = String_map.bindings t

(* Partial evaluation against the assignment. *)
let eval t term = Term.eval (fun name -> find_opt name t) term

(* Substitute every variable by its model value (sort default when free);
   the result is variable-free. *)
let eval_total t term =
  Term.map_vars
    (fun v ->
      match find_opt v.Term.name t with
      | Some (Term.VInt n) -> Term.int n
      | Some (Term.VBool b) -> Term.of_bool b
      | None -> (
          match v.Term.sort with
          | Term.Int -> Term.int 0
          | Term.Bool -> Term.false_))
    term

let satisfies t term =
  match eval_total t term with
  | Term.True -> true
  | Term.False -> false
  | reduced -> (
      match Term.eval (fun _ -> None) reduced with
      | Term.VBool b -> b
      | Term.VInt _ -> Term.sort_error "Model.satisfies: non-boolean term"
      | exception Term.Unassigned _ ->
          Term.sort_error "Model.satisfies: incomplete evaluation")

let pp fmt t =
  Format.fprintf fmt "@[<hv 2>{";
  String_map.iter
    (fun name v ->
      match v with
      | Term.VInt n -> Format.fprintf fmt "@ %s = %d;" name n
      | Term.VBool b -> Format.fprintf fmt "@ %s = %b;" name b)
    t;
  Format.fprintf fmt "@ }@]"

let to_string t = Format.asprintf "%a" pp t
