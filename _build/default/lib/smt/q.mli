(* Exact rational arithmetic over native integers.

   The simplex core needs exact rationals. Coefficients in DNS-V path
   conditions are tiny (label codes, array indices, lengths), so native
   63-bit integers with eager gcd normalization are ample. We still guard
   multiplication overflow with a checked multiply so that a silent wrap
   can never turn an UNSAT answer into SAT. *)

type t = { num : int; den : int; }
exception Overflow
val gcd : int -> int -> int
val checked_mul : int -> int -> int
val make : int -> int -> t
val of_int : int -> t
val zero : t
val one : t
val minus_one : t
val num : t -> int
val den : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val inv : t -> t
val div : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int
val floor : t -> int
val ceil : t -> int
val to_int_exn : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
