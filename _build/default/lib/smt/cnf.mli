(* Propositional skeleton extraction: Tseitin CNF over theory atoms.

   Boolean structure is compiled to clauses; the leaves are either boolean
   variables or integer comparisons (the theory atoms), each mapped to a
   positive propositional variable recorded in the atom table. Integer
   `ite` is hoisted to the boolean level first so that every atom is
   purely linear. *)

type lit = int
type clause = lit list
type atom_kind = Bool_atom of string | Theory_atom of Term.t
type t = {
  clauses : clause list;
  nvars : int;
  atoms : (int * atom_kind) list;
}
val int_branches : Term.t -> (Term.t * Term.t) list
val combine2 :
  Term.t ->
  Term.t ->
  (Term.t -> Term.t -> Term.t) -> (Term.t * Term.t) list
val preprocess : Term.t -> Term.t
val expand_cmp :
  (Term.t -> Term.t -> Term.t) ->
  Term.t -> Term.t -> Term.t
type builder = {
  mutable next : int;
  mutable acc_clauses : clause list;
  leaf_ids : (Term.t, int) Hashtbl.t;
  mutable acc_atoms : (int * atom_kind) list;
}
val fresh : builder -> int
val emit : builder -> clause -> unit
val leaf : builder -> Term.t -> atom_kind -> lit
val lit_of : builder -> Term.t -> lit
val of_term : Term.t -> t
