(* Linear integer arithmetic decision procedure: branch-and-bound over the
   rational simplex, plus disequality splitting.

   Conjunctions of `Linear.atom`s are decided here. Integrality is
   enforced by branching  x ≤ ⌊v⌋ ∨ x ≥ ⌈v⌉  on a fractional variable of
   the relaxation; disequalities split as  lin ≤ −1 ∨ lin ≥ 1. A depth cap
   returns [Unknown] rather than diverging on adversarial unbounded
   instances (never reached by DNS-V's bounded-list encodings). *)

module String_map :
  sig
    type key = String.t
    type 'a t = 'a Map.Make(String).t
    val empty : 'a t
    val add : key -> 'a -> 'a t -> 'a t
    val add_to_list : key -> 'a -> 'a list t -> 'a list t
    val update : key -> ('a option -> 'a option) -> 'a t -> 'a t
    val singleton : key -> 'a -> 'a t
    val remove : key -> 'a t -> 'a t
    val merge :
      (key -> 'a option -> 'b option -> 'c option) -> 'a t -> 'b t -> 'c t
    val union : (key -> 'a -> 'a -> 'a option) -> 'a t -> 'a t -> 'a t
    val cardinal : 'a t -> int
    val bindings : 'a t -> (key * 'a) list
    val min_binding : 'a t -> key * 'a
    val min_binding_opt : 'a t -> (key * 'a) option
    val max_binding : 'a t -> key * 'a
    val max_binding_opt : 'a t -> (key * 'a) option
    val choose : 'a t -> key * 'a
    val choose_opt : 'a t -> (key * 'a) option
    val find : key -> 'a t -> 'a
    val find_opt : key -> 'a t -> 'a option
    val find_first : (key -> bool) -> 'a t -> key * 'a
    val find_first_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val find_last : (key -> bool) -> 'a t -> key * 'a
    val find_last_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val map : ('a -> 'b) -> 'a t -> 'b t
    val mapi : (key -> 'a -> 'b) -> 'a t -> 'b t
    val filter : (key -> 'a -> bool) -> 'a t -> 'a t
    val filter_map : (key -> 'a -> 'b option) -> 'a t -> 'b t
    val partition : (key -> 'a -> bool) -> 'a t -> 'a t * 'a t
    val split : key -> 'a t -> 'a t * 'a option * 'a t
    val is_empty : 'a t -> bool
    val mem : key -> 'a t -> bool
    val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
    val compare : ('a -> 'a -> int) -> 'a t -> 'a t -> int
    val for_all : (key -> 'a -> bool) -> 'a t -> bool
    val exists : (key -> 'a -> bool) -> 'a t -> bool
    val to_list : 'a t -> (key * 'a) list
    val of_list : (key * 'a) list -> 'a t
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_rev_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_from : key -> 'a t -> (key * 'a) Seq.t
    val add_seq : (key * 'a) Seq.t -> 'a t -> 'a t
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
type model = int String_map.t
type result = Sat of model | Unsat | Unknown
val max_depth : int
type row = { coeffs : (int * string) list; rhs : int; is_eq : bool; }
val pp_model : Format.formatter -> int String_map.t -> unit
exception Trivially_unsat
val check : Linear.atom list -> result
