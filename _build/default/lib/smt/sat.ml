(* A small DPLL SAT core with unit propagation and chronological
   backtracking.

   The propositional skeletons DNS-V produces are modest — summaries keep
   branch structure explicit but conditions simple (§4.2) — so a lean DPLL
   with a trail beats the complexity of CDCL here. The solver supports
   adding blocking clauses between calls, which is how the DPLL(T) loop in
   [Solver] refutes theory-inconsistent assignments. *)

type assignment = bool array
(* index by variable id; valid between 1 and nvars *)

type result = Sat of assignment | Unsat

type t = {
  nvars : int;
  mutable clauses : Cnf.clause list;
}

let create ~nvars clauses = { nvars; clauses }
let add_clause t c = t.clauses <- c :: t.clauses

(* value: 0 unassigned, 1 true, -1 false *)
let lit_value values lit =
  let v = values.(abs lit) in
  if v = 0 then 0 else if (v > 0) = (lit > 0) then 1 else -1

exception Conflict

let solve t : result =
  let values = Array.make (t.nvars + 1) 0 in
  let trail = ref [] in
  let assign lit =
    values.(abs lit) <- (if lit > 0 then 1 else -1);
    trail := lit :: !trail
  in
  let unassign lit = values.(abs lit) <- 0 in
  (* Unit propagation to fixpoint; returns the list of literals assigned
     by this round (for backtracking) or raises [Conflict]. *)
  let propagate () =
    let assigned = ref [] in
    let changed = ref true in
    (try
       while !changed do
         changed := false;
         List.iter
           (fun clause ->
             let unassigned = ref [] and satisfied = ref false in
             List.iter
               (fun lit ->
                 match lit_value values lit with
                 | 1 -> satisfied := true
                 | 0 -> unassigned := lit :: !unassigned
                 | _ -> ())
               clause;
             if not !satisfied then
               match !unassigned with
               | [] -> raise Conflict
               | [ lit ] ->
                   assign lit;
                   assigned := lit :: !assigned;
                   changed := true
               | _ -> ())
           t.clauses
       done;
       Ok !assigned
     with Conflict -> Error !assigned)
  in
  let rec decide () =
    match propagate () with
    | Error assigned ->
        List.iter unassign assigned;
        false
    | Ok assigned -> (
        (* Pick the first unassigned variable. *)
        let pick = ref 0 in
        (try
           for v = 1 to t.nvars do
             if values.(v) = 0 then begin
               pick := v;
               raise Exit
             end
           done
         with Exit -> ());
        match !pick with
        | 0 -> true (* full assignment, all clauses satisfied *)
        | v ->
            let try_branch lit =
              assign lit;
              if decide () then true
              else begin
                unassign lit;
                trail := List.tl !trail;
                false
              end
            in
            if try_branch v then true
            else if try_branch (-v) then true
            else begin
              List.iter unassign assigned;
              false
            end)
  in
  if decide () then begin
    let out = Array.make (t.nvars + 1) false in
    for v = 1 to t.nvars do
      out.(v) <- values.(v) > 0
    done;
    Sat out
  end
  else Unsat
