(* A small DPLL SAT core with unit propagation and chronological
   backtracking.

   The propositional skeletons DNS-V produces are modest — summaries keep
   branch structure explicit but conditions simple (§4.2) — so a lean DPLL
   with a trail beats the complexity of CDCL here. The solver supports
   adding blocking clauses between calls, which is how the DPLL(T) loop in
   [Solver] refutes theory-inconsistent assignments. *)

type assignment = bool array
type result = Sat of assignment | Unsat
type t = { nvars : int; mutable clauses : Cnf.clause list; }
val create : nvars:int -> Cnf.clause list -> t
val add_clause : t -> Cnf.clause -> unit
val lit_value : int array -> int -> int
exception Conflict
val solve : t -> result
