lib/smt/term.ml: Format List Set
