lib/smt/cnf.mli: Hashtbl Term
