lib/smt/sat.ml: Array Cnf List
