lib/smt/lia.mli: Format Linear Map Seq String
