lib/smt/model.ml: Format Map String Term
