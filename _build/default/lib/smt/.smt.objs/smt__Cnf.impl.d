lib/smt/cnf.ml: Hashtbl List Term
