lib/smt/linear.ml: Format List Map Option String Term
