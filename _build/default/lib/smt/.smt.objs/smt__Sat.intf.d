lib/smt/sat.mli: Cnf
