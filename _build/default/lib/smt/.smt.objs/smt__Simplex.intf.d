lib/smt/simplex.mli: Q
