lib/smt/solver.ml: Array Cnf Lia Linear List Model Sat Term
