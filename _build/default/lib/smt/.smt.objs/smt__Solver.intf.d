lib/smt/solver.mli: Lia Linear Model Term
