lib/smt/simplex.ml: Array List Option Q
