lib/smt/q.mli: Format
