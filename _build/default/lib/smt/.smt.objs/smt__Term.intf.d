lib/smt/term.mli: Format Seq
