lib/smt/model.mli: Format Map Seq String Term
