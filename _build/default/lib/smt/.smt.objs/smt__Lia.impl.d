lib/smt/lia.ml: Array Format Hashtbl Linear List Map Q Seq Simplex String
