lib/smt/q.ml: Format
