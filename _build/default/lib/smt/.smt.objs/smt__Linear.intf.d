lib/smt/linear.mli: Format Map Seq String Term
