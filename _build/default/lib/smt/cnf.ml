(* Propositional skeleton extraction: Tseitin CNF over theory atoms.

   Boolean structure is compiled to clauses; the leaves are either boolean
   variables or integer comparisons (the theory atoms), each mapped to a
   positive propositional variable recorded in the atom table. Integer
   `ite` is hoisted to the boolean level first so that every atom is
   purely linear. *)

type lit = int
(* Positive literal = variable id (1-based); negative = negation. *)

type clause = lit list

type atom_kind = Bool_atom of string (* boolean variable name *) | Theory_atom of Term.t

type t = {
  clauses : clause list;
  nvars : int;
  atoms : (int * atom_kind) list; (* var id → leaf meaning *)
}

(* ------------------------------------------------------------------ *)
(* Preprocessing                                                      *)
(* ------------------------------------------------------------------ *)

(* Hoist integer-sorted [ite] out of a term: produce the list of
   (path condition, ite-free integer term) alternatives. *)
let rec int_branches (t : Term.t) : (Term.t * Term.t) list =
  match t with
  | Term.Ite (c, a, b) ->
      let c = preprocess c in
      List.map (fun (g, t') -> (Term.and_ [ c; g ], t')) (int_branches a)
      @ List.map
          (fun (g, t') -> (Term.and_ [ Term.not_ c; g ], t'))
          (int_branches b)
  | Term.Add ts ->
      List.fold_left
        (fun acc t ->
          List.concat_map
            (fun (g, sum) ->
              List.map
                (fun (g', t') -> (Term.and_ [ g; g' ], Term.add [ sum; t' ]))
                (int_branches t))
            acc)
        [ (Term.true_, Term.int 0) ]
        ts
  | Term.Sub (a, b) ->
      combine2 a b (fun x y -> Term.sub x y)
  | Term.Neg a -> List.map (fun (g, x) -> (g, Term.neg x)) (int_branches a)
  | Term.Mul_const (k, a) ->
      List.map (fun (g, x) -> (g, Term.mul_const k x)) (int_branches a)
  | t -> [ (Term.true_, t) ]

and combine2 a b f =
  List.concat_map
    (fun (ga, xa) ->
      List.map (fun (gb, xb) -> (Term.and_ [ ga; gb ], f xa xb)) (int_branches b))
    (int_branches a)

(* Normalize a boolean term: Eq over booleans becomes Iff; comparisons
   over integer ite-terms are expanded into guarded disjunctions. *)
and preprocess (t : Term.t) : Term.t =
  match t with
  | Term.True | Term.False | Term.Var _ -> t
  | Term.Not a -> Term.not_ (preprocess a)
  | Term.And ts -> Term.and_ (List.map preprocess ts)
  | Term.Or ts -> Term.or_ (List.map preprocess ts)
  | Term.Implies (a, b) -> Term.implies (preprocess a) (preprocess b)
  | Term.Iff (a, b) -> Term.iff (preprocess a) (preprocess b)
  | Term.Ite (c, a, b) ->
      (* boolean-sorted ite *)
      let c = preprocess c in
      Term.or_
        [
          Term.and_ [ c; preprocess a ];
          Term.and_ [ Term.not_ c; preprocess b ];
        ]
  | Term.Eq (a, b) when Term.is_bool a -> Term.iff (preprocess a) (preprocess b)
  | Term.Eq (a, b) -> expand_cmp (fun x y -> Term.eq x y) a b
  | Term.Le (a, b) -> expand_cmp Term.le a b
  | Term.Lt (a, b) -> expand_cmp Term.lt a b
  | Term.Int_const _ | Term.Add _ | Term.Sub _ | Term.Neg _ | Term.Mul_const _
    ->
      Term.sort_error "preprocess: integer term at boolean position"

and expand_cmp cmp a b =
  match combine2 a b cmp with
  | [ (g, atom) ] when g = Term.True -> atom
  | branches ->
      Term.or_ (List.map (fun (g, atom) -> Term.and_ [ g; atom ]) branches)

(* ------------------------------------------------------------------ *)
(* Tseitin encoding                                                   *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable next : int;
  mutable acc_clauses : clause list;
  leaf_ids : (Term.t, int) Hashtbl.t;
  mutable acc_atoms : (int * atom_kind) list;
}

let fresh b =
  let v = b.next in
  b.next <- v + 1;
  v

let emit b c = b.acc_clauses <- c :: b.acc_clauses

let leaf b (t : Term.t) (kind : atom_kind) : lit =
  match Hashtbl.find_opt b.leaf_ids t with
  | Some v -> v
  | None ->
      let v = fresh b in
      Hashtbl.add b.leaf_ids t v;
      b.acc_atoms <- (v, kind) :: b.acc_atoms;
      v

(* Translate a preprocessed boolean term to a defining literal. *)
let rec lit_of b (t : Term.t) : lit =
  match t with
  | Term.True ->
      let v = leaf b Term.True (Bool_atom "$true") in
      emit b [ v ];
      v
  | Term.False ->
      let v = leaf b Term.True (Bool_atom "$true") in
      emit b [ v ];
      -v
  | Term.Var { name; sort = Term.Bool } -> leaf b t (Bool_atom name)
  | Term.Eq _ | Term.Le _ | Term.Lt _ -> leaf b t (Theory_atom t)
  | Term.Not a -> -lit_of b a
  | Term.And ts ->
      let lits = List.map (lit_of b) ts in
      let v = fresh b in
      List.iter (fun l -> emit b [ -v; l ]) lits;
      emit b (v :: List.map (fun l -> -l) lits);
      v
  | Term.Or ts ->
      let lits = List.map (lit_of b) ts in
      let v = fresh b in
      List.iter (fun l -> emit b [ v; -l ]) lits;
      emit b (-v :: lits);
      v
  | Term.Implies (x, y) -> lit_of b (Term.Or [ Term.Not x; y ])
  | Term.Iff (x, y) ->
      let lx = lit_of b x and ly = lit_of b y in
      let v = fresh b in
      emit b [ -v; -lx; ly ];
      emit b [ -v; lx; -ly ];
      emit b [ v; lx; ly ];
      emit b [ v; -lx; -ly ];
      v
  | _ -> Term.sort_error "cnf: unexpected term shape after preprocessing"

let of_term (t : Term.t) : t =
  let t = preprocess t in
  let b =
    { next = 1; acc_clauses = []; leaf_ids = Hashtbl.create 64; acc_atoms = [] }
  in
  let root = lit_of b t in
  emit b [ root ];
  { clauses = b.acc_clauses; nvars = b.next - 1; atoms = b.acc_atoms }
