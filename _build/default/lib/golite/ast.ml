module Ty = Minir.Ty

(* Golite: the Go-like surface language the "production" DNS engine is
   written in.

   Deliberately small but idiomatic for systems code: integers, booleans,
   fixed-capacity arrays, structs, pointers, `new`, loops with
   break/continue, short-circuit booleans. Aggregates are manipulated
   through pointers (declaring a struct/array local allocates a stack
   slot and the variable denotes its address), matching the flavour of
   the Go engine the paper verifies — raw index arithmetic, control
   flags, and data structures mutated through pointers (§3.3, §3.4). *)

type ty =
  | Tint
  | Tbool
  | Tptr of ty
  | Tstruct of string
  | Tarray of ty * int

type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And (* short-circuit *)
  | Or (* short-circuit *)

type expr =
  | Int of int
  | Bool of bool
  | Nil of ty (* typed nil pointer *)
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Field of expr * string (* p.f through a struct pointer (nil-checked) *)
  | Index of expr * expr (* a[i] through an array pointer (bounds-checked) *)
  | Call of string * expr list
  | New of ty (* heap allocation, zero-initialized *)

type lvalue =
  | Lvar of string
  | Lfield of expr * string
  | Lindex of expr * expr

type stmt =
  | Declare of string * ty * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr_stmt of expr (* a call evaluated for effect *)
  | Break
  | Continue
  | Panic of string (* explicit programmer panic *)

type func = {
  fn_name : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
}

type struct_def = { sname : string; fields : (string * ty) list }
type program = { structs : struct_def list; funcs : func list }

exception Golite_error of string

let error fmt = Format.kasprintf (fun s -> raise (Golite_error s)) fmt

let find_struct (p : program) name =
  match List.find_opt (fun s -> s.sname = name) p.structs with
  | Some s -> s
  | None -> error "unknown struct %s" name

let find_func (p : program) name =
  match List.find_opt (fun f -> f.fn_name = name) p.funcs with
  | Some f -> f
  | None -> error "unknown function %s" name

let field_ty (p : program) sname fname =
  let s = find_struct p sname in
  match List.assoc_opt fname s.fields with
  | Some ty -> ty
  | None -> error "struct %s has no field %s" sname fname

let rec pp_ty fmt = function
  | Tint -> Format.pp_print_string fmt "int"
  | Tbool -> Format.pp_print_string fmt "bool"
  | Tptr t -> Format.fprintf fmt "*%a" pp_ty t
  | Tstruct s -> Format.pp_print_string fmt s
  | Tarray (t, n) -> Format.fprintf fmt "[%d]%a" n pp_ty t

let ty_to_string t = Format.asprintf "%a" pp_ty t

let rec equal_ty a b =
  match (a, b) with
  | Tint, Tint | Tbool, Tbool -> true
  | Tptr a, Tptr b -> equal_ty a b
  | Tstruct a, Tstruct b -> a = b
  | Tarray (a, n), Tarray (b, m) -> n = m && equal_ty a b
  | (Tint | Tbool | Tptr _ | Tstruct _ | Tarray _), _ -> false

let is_aggregate = function
  | Tstruct _ | Tarray _ -> true
  | Tint | Tbool | Tptr _ -> false

(* Lowering of surface types to Minir types. *)
let rec lower_ty = function
  | Tint -> Ty.I64
  | Tbool -> Ty.I1
  | Tptr t -> Ty.Ptr (lower_ty t)
  | Tstruct s -> Ty.Struct s
  | Tarray (t, n) -> Ty.Array (lower_ty t, n)

let lower_structs (structs : struct_def list) : Ty.tenv =
  List.map
    (fun s ->
      {
        Ty.sname = s.sname;
        Ty.fields =
          List.map
            (fun (fname, ty) -> { Ty.fname; Ty.fty = lower_ty ty })
            s.fields;
      })
    structs
