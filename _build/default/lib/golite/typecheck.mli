(* Golite type rules — the single source of truth shared by the checker
   entry point and the compiler.

   Variables of aggregate type denote the *address* of their stack slot,
   so `Var x` where x : [4]int has type *[4]int. Field and index access
   go through pointers and auto-wrap aggregate results as pointers. *)

type env = {
  vars : (string * Ast.ty) list;
  prog : Ast.program;
  fn : Ast.func;
}
val lookup : env -> string -> Ast.ty option
val eval_ty_of_var : Ast.ty -> Ast.ty
val type_of_expr : env -> Ast.expr -> Ast.ty
val expect : env -> Ast.expr -> Ast.ty -> unit
val type_of_lvalue : env -> Ast.lvalue -> Ast.ty
val check_stmts : env -> bool -> Ast.stmt list -> env
val check_stmt : env -> bool -> Ast.stmt -> env
val check_func : Ast.program -> Ast.func -> unit
val check : Ast.program -> unit
