(* Pretty-printing of Golite programs to their Go-like concrete syntax.

   The output parses back to the identical AST (Parse.program_of_string;
   the round trip is property-tested), which is how engine sources can
   be stored and reviewed as text, like the Go sources the paper's
   pipeline consumes. *)

val pp_ty : Format.formatter -> Ast.ty -> unit
val binop_prec : Ast.binop -> int
val binop_token : Ast.binop -> string
val pp_expr_prec : int -> Format.formatter -> Ast.expr -> unit
val pp_args : Format.formatter -> Ast.expr list -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit
val pp_block : int -> Format.formatter -> Ast.stmt list -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_struct : Format.formatter -> Ast.struct_def -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val func_to_string : Ast.func -> string
