lib/golite/parse.mli: Ast Format
