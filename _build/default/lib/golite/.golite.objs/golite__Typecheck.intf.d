lib/golite/typecheck.mli: Ast
