lib/golite/ast.mli: Format Minir
