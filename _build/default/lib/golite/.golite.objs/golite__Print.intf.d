lib/golite/print.mli: Ast Format
