lib/golite/dsl.mli: Ast Format Minir
