lib/golite/typecheck.ml: Ast List
