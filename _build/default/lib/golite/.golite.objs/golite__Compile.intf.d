lib/golite/compile.mli: Ast Minir Typecheck
