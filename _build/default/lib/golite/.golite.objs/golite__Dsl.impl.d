lib/golite/dsl.ml: Ast
