lib/golite/ast.ml: Format List Minir
