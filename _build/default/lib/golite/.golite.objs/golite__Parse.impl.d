lib/golite/parse.ml: Ast Buffer Format List Printf String
