lib/golite/compile.ml: Ast List Minir Option Printf Typecheck
