lib/golite/print.ml: Ast Format List String
