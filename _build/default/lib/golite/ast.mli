
module Ty = Minir.Ty
type ty = Tint | Tbool | Tptr of ty | Tstruct of string | Tarray of ty * int
type unop = Not | Neg
type binop =
    Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
type expr =
    Int of int
  | Bool of bool
  | Nil of ty
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Field of expr * string
  | Index of expr * expr
  | Call of string * expr list
  | New of ty
type lvalue =
    Lvar of string
  | Lfield of expr * string
  | Lindex of expr * expr
type stmt =
    Declare of string * ty * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr_stmt of expr
  | Break
  | Continue
  | Panic of string
type func = {
  fn_name : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
}
type struct_def = { sname : string; fields : (string * ty) list; }
type program = { structs : struct_def list; funcs : func list; }
exception Golite_error of string
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val find_struct : program -> string -> struct_def
val find_func : program -> string -> func
val field_ty : program -> string -> string -> ty
val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
val equal_ty : ty -> ty -> bool
val is_aggregate : ty -> bool
val lower_ty : ty -> Ty.t
val lower_structs : struct_def list -> Ty.tenv
