(* Builder combinators for writing Golite programs in OCaml.

   The engine versions under lib/engine are written against this API, so
   their source reads close to the Go pseudo-code in the paper (Figures
   3, 4). *)

module Ty = Minir.Ty
type ty =
  Ast.ty =
    Tint
  | Tbool
  | Tptr of ty
  | Tstruct of string
  | Tarray of ty * int
type unop = Ast.unop = Not | Neg
type binop =
  Ast.binop =
    Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
type expr =
  Ast.expr =
    Int of int
  | Bool of bool
  | Nil of ty
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Field of expr * string
  | Index of expr * expr
  | Call of string * expr list
  | New of ty
type lvalue =
  Ast.lvalue =
    Lvar of string
  | Lfield of expr * string
  | Lindex of expr * expr
type stmt =
  Ast.stmt =
    Declare of string * ty * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr_stmt of expr
  | Break
  | Continue
  | Panic of string
type func =
  Ast.func = {
  fn_name : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
}
type struct_def =
  Ast.struct_def = {
  sname : string;
  fields : (string * ty) list;
}
type program =
  Ast.program = {
  structs : struct_def list;
  funcs : func list;
}
exception Golite_error of string
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val find_struct : program -> string -> struct_def
val find_func : program -> string -> func
val field_ty : program -> string -> string -> ty
val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
val equal_ty : ty -> ty -> bool
val is_aggregate : ty -> bool
val lower_ty : ty -> Ty.t
val lower_structs : struct_def list -> Ty.tenv
val tint : ty
val tbool : ty
val tptr : ty -> ty
val tstruct : string -> ty
val tarray : ty -> int -> ty
val i : int -> expr
val b : bool -> expr
val v : string -> expr
val nil : ty -> expr
val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val ( == ) : expr -> expr -> expr
val ( != ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( && ) : expr -> expr -> expr
val ( || ) : expr -> expr -> expr
val not_ : expr -> expr
val neg : expr -> expr
val ( %. ) : expr -> string -> expr
val ( %@ ) : expr -> expr -> expr
val call : string -> expr list -> expr
val new_ : ty -> expr
val decl : string -> ty -> stmt
val decl_init : string -> ty -> expr -> stmt
val set : string -> expr -> stmt
val set_field : expr -> string -> expr -> stmt
val set_index : expr -> expr -> expr -> stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val when_ : expr -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val return : expr -> stmt
val return_void : stmt
val expr : expr -> stmt
val break_ : stmt
val continue_ : stmt
val panic : string -> stmt
val for_ :
  string -> init:expr -> cond:expr -> step:int -> stmt list -> stmt list
val func :
  string -> params:(string * ty) list -> ret:ty option -> stmt list -> func
val struct_ : string -> (string * ty) list -> struct_def
val program : struct_def list -> func list -> program
