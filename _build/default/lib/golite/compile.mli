(* Golite → Minir compilation.

   clang -O0 shape: one stack slot per variable, loads/stores for every
   access, short-circuit booleans via control flow. Crucially — mirroring
   GoLLVM (§4.1) — every array index is bounds-checked and every pointer
   dereference nil-checked, with failures branching to explicit [Panic]
   blocks. Verifying safety downstream means proving those blocks
   unreachable. *)

module Ty = Minir.Ty
module Instr = Minir.Instr
module Wellform = Minir.Wellform
type slot = Direct_aggregate of Ast.ty | Cell of Ast.ty
type ctx = {
  prog : Ast.program;
  fn : Ast.func;
  tenv : Ast.Ty.tenv;
  mutable temp : int;
  mutable label : int;
  mutable done_blocks : (Instr.label * Instr.block) list;
  mutable cur_label : Instr.label;
  mutable cur_insns : Instr.instr list;
  mutable vars : (string * (Instr.reg * slot)) list;
  mutable loops : (Instr.label * Instr.label) list;
}
val fresh_temp : ctx -> string
val fresh_label : ctx -> string -> string
val emit : ctx -> Instr.instr -> unit
val assign : ctx -> Instr.rvalue -> Instr.operand
val seal : ctx -> Instr.terminator -> next:Instr.label -> unit
val panic_block : ctx -> string -> string
val typing_env : ctx -> Typecheck.env
val type_of : ctx -> Ast.expr -> Ast.ty
val nil_check : ctx -> Instr.operand -> Ast.Ty.t -> unit
val bounds_check : ctx -> Instr.operand -> int -> unit
val lookup_var : ctx -> string -> Instr.reg * slot
val binop_table : Ast.binop -> Instr.binop
val icmp_table : Ast.binop -> Instr.icmp
val compile_expr : ctx -> Ast.expr -> Instr.operand
val compile_access : ctx -> Ast.expr -> Instr.operand * Ast.ty
val compile_short_circuit :
  ctx -> is_and:bool -> Ast.expr -> Ast.expr -> Instr.operand
val compile_lvalue_addr :
  ctx -> Ast.lvalue -> Instr.operand * Ast.ty
val compile_stmts : ctx -> Ast.stmt list -> unit
val compile_stmt : ctx -> Ast.stmt -> unit
val compile_func :
  Ast.program -> Ast.Ty.tenv -> Ast.func -> Instr.func
val compile : Ast.program -> Instr.program
