(* Pretty-printing of Golite programs to their Go-like concrete syntax.

   The output parses back to the identical AST (Parse.program_of_string;
   the round trip is property-tested), which is how engine sources can
   be stored and reviewed as text, like the Go sources the paper's
   pipeline consumes. *)

open Ast

let rec pp_ty fmt = function
  | Tint -> Format.pp_print_string fmt "int"
  | Tbool -> Format.pp_print_string fmt "bool"
  | Tptr t -> Format.fprintf fmt "*%a" pp_ty t
  | Tstruct s -> Format.pp_print_string fmt s
  | Tarray (t, n) -> Format.fprintf fmt "[%d]%a" n pp_ty t

(* Operator precedence, loosest to tightest. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Rem -> 5

let binop_token = function
  | Or -> "||"
  | And -> "&&"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"

let rec pp_expr_prec prec fmt (e : expr) =
  match e with
  | Int n ->
      if n < 0 then Format.fprintf fmt "(%d)" n else Format.fprintf fmt "%d" n
  | Bool b -> Format.fprintf fmt "%b" b
  | Nil ty -> Format.fprintf fmt "nil(%a)" pp_ty ty
  | Var x -> Format.pp_print_string fmt x
  | Unop (Not, e) -> Format.fprintf fmt "!%a" (pp_expr_prec 6) e
  | Unop (Neg, e) -> Format.fprintf fmt "-%a" (pp_expr_prec 6) e
  | Binop (op, a, b) ->
      let p = binop_prec op in
      let body fmt () =
        (* Left-associative: the right operand needs a strictly higher
           precedence context. *)
        Format.fprintf fmt "%a %s %a" (pp_expr_prec p) a (binop_token op)
          (pp_expr_prec (p + 1)) b
      in
      if p < prec then Format.fprintf fmt "(%a)" body ()
      else body fmt ()
  | Field (e, f) -> Format.fprintf fmt "%a.%s" (pp_expr_prec 7) e f
  | Index (e, idx) ->
      Format.fprintf fmt "%a[%a]" (pp_expr_prec 7) e (pp_expr_prec 0) idx
  | Call (f, args) ->
      Format.fprintf fmt "%s(%a)" f pp_args args
  | New ty -> Format.fprintf fmt "new(%a)" pp_ty ty

and pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    (pp_expr_prec 0) fmt args

let pp_expr = pp_expr_prec 0

let pp_lvalue fmt = function
  | Lvar x -> Format.pp_print_string fmt x
  | Lfield (e, f) -> Format.fprintf fmt "%a.%s" (pp_expr_prec 7) e f
  | Lindex (e, idx) ->
      Format.fprintf fmt "%a[%a]" (pp_expr_prec 7) e pp_expr idx

let rec pp_stmt indent fmt (s : stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Declare (x, ty, None) -> Format.fprintf fmt "%svar %s %a" pad x pp_ty ty
  | Declare (x, ty, Some e) ->
      Format.fprintf fmt "%svar %s %a = %a" pad x pp_ty ty pp_expr e
  | Assign (lv, e) -> Format.fprintf fmt "%s%a = %a" pad pp_lvalue lv pp_expr e
  | If (c, then_, []) ->
      Format.fprintf fmt "%sif %a {@\n%a%s}" pad pp_expr c (pp_block indent)
        then_ pad
  | If (c, then_, else_) ->
      Format.fprintf fmt "%sif %a {@\n%a%s} else {@\n%a%s}" pad pp_expr c
        (pp_block indent) then_ pad (pp_block indent) else_ pad
  | While (c, body) ->
      Format.fprintf fmt "%swhile %a {@\n%a%s}" pad pp_expr c (pp_block indent)
        body pad
  | Return None -> Format.fprintf fmt "%sreturn" pad
  | Return (Some e) -> Format.fprintf fmt "%sreturn %a" pad pp_expr e
  | Expr_stmt e -> Format.fprintf fmt "%s%a" pad pp_expr e
  | Break -> Format.fprintf fmt "%sbreak" pad
  | Continue -> Format.fprintf fmt "%scontinue" pad
  | Panic msg -> Format.fprintf fmt "%spanic(%S)" pad msg

and pp_block indent fmt body =
  List.iter (fun s -> Format.fprintf fmt "%a@\n" (pp_stmt (indent + 2)) s) body

let pp_func fmt (f : func) =
  Format.fprintf fmt "func %s(" f.fn_name;
  List.iteri
    (fun k (x, ty) ->
      if k > 0 then Format.pp_print_string fmt ", ";
      Format.fprintf fmt "%s %a" x pp_ty ty)
    f.params;
  Format.pp_print_string fmt ")";
  (match f.ret with
  | Some ty -> Format.fprintf fmt " %a" pp_ty ty
  | None -> ());
  Format.fprintf fmt " {@\n%a}@\n" (pp_block 0) f.body

let pp_struct fmt (s : struct_def) =
  Format.fprintf fmt "struct %s {@\n" s.sname;
  List.iter
    (fun (fname, ty) -> Format.fprintf fmt "  %s %a@\n" fname pp_ty ty)
    s.fields;
  Format.fprintf fmt "}@\n"

let pp_program fmt (p : program) =
  List.iter (fun s -> Format.fprintf fmt "%a@\n" pp_struct s) p.structs;
  List.iter (fun f -> Format.fprintf fmt "%a@\n" pp_func f) p.funcs

let program_to_string (p : program) = Format.asprintf "%a" pp_program p
let func_to_string (f : func) = Format.asprintf "%a" pp_func f
