(* Golite → Minir compilation.

   clang -O0 shape: one stack slot per variable, loads/stores for every
   access, short-circuit booleans via control flow. Crucially — mirroring
   GoLLVM (§4.1) — every array index is bounds-checked and every pointer
   dereference nil-checked, with failures branching to explicit [Panic]
   blocks. Verifying safety downstream means proving those blocks
   unreachable. *)

module Ty = Minir.Ty
module Instr = Minir.Instr
module Wellform = Minir.Wellform
open Ast

type slot =
  | Direct_aggregate of ty (* the alloca IS the aggregate; Var = its address *)
  | Cell of ty (* the alloca holds a scalar/pointer value; Var = load *)

type ctx = {
  prog : program;
  fn : func;
  tenv : Ty.tenv;
  mutable temp : int;
  mutable label : int;
  mutable done_blocks : (Instr.label * Instr.block) list; (* reversed *)
  mutable cur_label : Instr.label;
  mutable cur_insns : Instr.instr list; (* reversed *)
  mutable vars : (string * (Instr.reg * slot)) list;
  mutable loops : (Instr.label * Instr.label) list; (* (break, continue) *)
}

let fresh_temp ctx =
  let n = ctx.temp in
  ctx.temp <- n + 1;
  Printf.sprintf "t%d" n

let fresh_label ctx prefix =
  let n = ctx.label in
  ctx.label <- n + 1;
  Printf.sprintf "%s.%d" prefix n

let emit ctx i = ctx.cur_insns <- i :: ctx.cur_insns

let assign ctx rv =
  let r = fresh_temp ctx in
  emit ctx (Instr.Assign (r, rv));
  Instr.Reg r

(* Close the current block with [term] and open a new one at [label]. *)
let seal ctx term ~next =
  ctx.done_blocks <-
    (ctx.cur_label, { Instr.insns = List.rev ctx.cur_insns; term })
    :: ctx.done_blocks;
  ctx.cur_label <- next;
  ctx.cur_insns <- []

(* Emit a fresh panic block for [reason] and return its label. *)
let panic_block ctx reason =
  let l = fresh_label ctx "panic" in
  ctx.done_blocks <- (l, { Instr.insns = []; term = Instr.Panic reason }) :: ctx.done_blocks;
  l

let typing_env ctx = { Typecheck.vars = []; prog = ctx.prog; fn = ctx.fn }

(* A typing view that tracks the compiler's scope (the compiler threads
   declared variables through ctx.vars). *)
let type_of ctx e =
  let vars =
    List.map
      (fun (x, (_, s)) ->
        (x, match s with Direct_aggregate ty -> ty | Cell ty -> ty))
      ctx.vars
  in
  Typecheck.type_of_expr { (typing_env ctx) with Typecheck.vars } e

(* Insert a nil-pointer check on [p] (§4.1's automatic safety checks). *)
let nil_check ctx (p : Instr.operand) (ptr_ty : Ty.t) =
  let c = assign ctx (Instr.Icmp (Instr.Eq, ptr_ty, p, Instr.Null ptr_ty)) in
  let bad = panic_block ctx "nil pointer dereference" in
  let ok = fresh_label ctx "nonnil" in
  seal ctx (Instr.Cond_br (c, bad, ok)) ~next:ok

(* Insert a bounds check of [i] against capacity [n]. *)
let bounds_check ctx (i : Instr.operand) n =
  let lo = assign ctx (Instr.Icmp (Instr.Slt, Ty.I64, i, Instr.Const_int 0)) in
  let hi = assign ctx (Instr.Icmp (Instr.Sge, Ty.I64, i, Instr.Const_int n)) in
  let bad_cond = assign ctx (Instr.Binop (Instr.Or_, lo, hi)) in
  let bad = panic_block ctx "index out of range" in
  let ok = fresh_label ctx "inbounds" in
  seal ctx (Instr.Cond_br (bad_cond, bad, ok)) ~next:ok

let lookup_var ctx x =
  match List.assoc_opt x ctx.vars with
  | Some v -> v
  | None -> error "%s: unbound variable %s" ctx.fn.fn_name x

let binop_table = function
  | Add -> Instr.Add
  | Sub -> Instr.Sub
  | Mul -> Instr.Mul
  | Div -> Instr.Sdiv
  | Rem -> Instr.Srem
  | _ -> assert false

let icmp_table = function
  | Eq -> Instr.Eq
  | Ne -> Instr.Ne
  | Lt -> Instr.Slt
  | Le -> Instr.Sle
  | Gt -> Instr.Sgt
  | Ge -> Instr.Sge
  | _ -> assert false

(* Compile an expression to an operand. *)
let rec compile_expr ctx (e : expr) : Instr.operand =
  match e with
  | Int n -> Instr.Const_int n
  | Bool b -> Instr.Const_bool b
  | Nil ty -> Instr.Null (lower_ty ty)
  | Var x -> (
      let slot_reg, slot = lookup_var ctx x in
      match slot with
      | Direct_aggregate _ -> Instr.Reg slot_reg
      | Cell ty ->
          let value_ty = lower_ty (Typecheck.eval_ty_of_var ty) in
          assign ctx (Instr.Load (value_ty, Instr.Reg slot_reg)))
  | Unop (Not, e) -> assign ctx (Instr.Not (compile_expr ctx e))
  | Unop (Neg, e) ->
      assign ctx (Instr.Binop (Instr.Sub, Instr.Const_int 0, compile_expr ctx e))
  | Binop ((Add | Sub | Mul | Div | Rem) as op, a, b) ->
      let va = compile_expr ctx a in
      let vb = compile_expr ctx b in
      (match op with
      | Div | Rem ->
          (* Division panics on a zero divisor, like Go. *)
          let z =
            assign ctx (Instr.Icmp (Instr.Eq, Ty.I64, vb, Instr.Const_int 0))
          in
          let bad = panic_block ctx "integer divide by zero" in
          let ok = fresh_label ctx "nonzero" in
          seal ctx (Instr.Cond_br (z, bad, ok)) ~next:ok
      | _ -> ());
      assign ctx (Instr.Binop (binop_table op, va, vb))
  | Binop ((Lt | Le | Gt | Ge) as op, a, b) ->
      let va = compile_expr ctx a in
      let vb = compile_expr ctx b in
      assign ctx (Instr.Icmp (icmp_table op, Ty.I64, va, vb))
  | Binop ((Eq | Ne) as op, a, b) ->
      let cmp_ty = lower_ty (type_of ctx a) in
      let va = compile_expr ctx a in
      let vb = compile_expr ctx b in
      assign ctx (Instr.Icmp (icmp_table op, cmp_ty, va, vb))
  | Binop (And, a, b) -> compile_short_circuit ctx ~is_and:true a b
  | Binop (Or, a, b) -> compile_short_circuit ctx ~is_and:false a b
  | Field (_, _) | Index (_, _) -> (
      let addr, elem_ty = compile_access ctx e in
      match elem_ty with
      | Tstruct _ | Tarray _ -> addr (* aggregates evaluate to their address *)
      | _ -> assign ctx (Instr.Load (lower_ty elem_ty, addr)))
  | Call (name, args) ->
      let vargs = List.map (compile_expr ctx) args in
      assign ctx (Instr.Call (name, vargs))
  | New ty -> assign ctx (Instr.Newobject (lower_ty ty))

(* Compile a Field/Index chain to the address of the accessed element,
   returning (address operand, element surface type). *)
and compile_access ctx (e : expr) : Instr.operand * ty =
  match e with
  | Field (base, f) -> (
      match type_of ctx base with
      | Tptr (Tstruct s) ->
          let p = compile_expr ctx base in
          nil_check ctx p (lower_ty (Tptr (Tstruct s)));
          let def = Ty.find_struct ctx.tenv s in
          let idx, _ = Ty.field_index def f in
          let fty = field_ty ctx.prog s f in
          let addr =
            assign ctx
              (Instr.Gep (Ty.Struct s, p, [ Instr.Const_int idx ]))
          in
          (addr, fty)
      | ty -> error "%s: field through %s" ctx.fn.fn_name (ty_to_string ty))
  | Index (base, i) -> (
      match type_of ctx base with
      | Tptr (Tarray (elt, n)) ->
          let p = compile_expr ctx base in
          nil_check ctx p (lower_ty (Tptr (Tarray (elt, n))));
          let vi = compile_expr ctx i in
          bounds_check ctx vi n;
          let addr =
            assign ctx (Instr.Gep (lower_ty (Tarray (elt, n)), p, [ vi ]))
          in
          (addr, elt)
      | ty -> error "%s: index through %s" ctx.fn.fn_name (ty_to_string ty))
  | _ -> error "%s: not an access path" ctx.fn.fn_name

and compile_short_circuit ctx ~is_and a b =
  let slot = assign ctx (Instr.Alloca Ty.I1) in
  let va = compile_expr ctx a in
  let rhs = fresh_label ctx "sc.rhs" in
  let short = fresh_label ctx "sc.short" in
  let join = fresh_label ctx "sc.join" in
  let br =
    if is_and then Instr.Cond_br (va, rhs, short)
    else Instr.Cond_br (va, short, rhs)
  in
  seal ctx br ~next:short;
  emit ctx (Instr.Store (Ty.I1, Instr.Const_bool (not is_and), slot));
  seal ctx (Instr.Br join) ~next:rhs;
  let vb = compile_expr ctx b in
  emit ctx (Instr.Store (Ty.I1, vb, slot));
  seal ctx (Instr.Br join) ~next:join;
  assign ctx (Instr.Load (Ty.I1, slot))

let compile_lvalue_addr ctx (lv : lvalue) : Instr.operand * ty =
  match lv with
  | Lvar x -> (
      let slot_reg, slot = lookup_var ctx x in
      match slot with
      | Cell ty -> (Instr.Reg slot_reg, ty)
      | Direct_aggregate _ ->
          error "%s: cannot assign whole aggregate %s" ctx.fn.fn_name x)
  | Lfield (base, f) -> compile_access ctx (Field (base, f))
  | Lindex (base, i) -> compile_access ctx (Index (base, i))

let rec compile_stmts ctx stmts = List.iter (compile_stmt ctx) stmts

and compile_stmt ctx (s : stmt) =
  match s with
  | Declare (x, ty, init) ->
      if is_aggregate ty then begin
        let slot = fresh_temp ctx in
        (* Aggregate locals are zero-initialized slots (Go semantics);
           Newobject guarantees the zeroing. *)
        emit ctx (Instr.Assign (slot, Instr.Newobject (lower_ty ty)));
        ctx.vars <- (x, (slot, Direct_aggregate ty)) :: ctx.vars
      end
      else begin
        let slot = fresh_temp ctx in
        emit ctx (Instr.Assign (slot, Instr.Alloca (lower_ty ty)));
        (match init with
        | Some e ->
            let v = compile_expr ctx e in
            emit ctx (Instr.Store (lower_ty ty, v, Instr.Reg slot))
        | None -> ());
        ctx.vars <- (x, (slot, Cell ty)) :: ctx.vars
      end
  | Assign (lv, e) ->
      let v = compile_expr ctx e in
      let addr, ty = compile_lvalue_addr ctx lv in
      let value_ty = lower_ty (Typecheck.eval_ty_of_var ty) in
      emit ctx (Instr.Store (value_ty, v, addr))
  | If (c, then_, else_) ->
      let vc = compile_expr ctx c in
      let lt = fresh_label ctx "if.then" in
      let lf = fresh_label ctx "if.else" in
      let lj = fresh_label ctx "if.join" in
      seal ctx (Instr.Cond_br (vc, lt, lf)) ~next:lt;
      let saved = ctx.vars in
      compile_stmts ctx then_;
      ctx.vars <- saved;
      seal ctx (Instr.Br lj) ~next:lf;
      compile_stmts ctx else_;
      ctx.vars <- saved;
      seal ctx (Instr.Br lj) ~next:lj
  | While (c, body) ->
      let lc = fresh_label ctx "loop.cond" in
      let lb = fresh_label ctx "loop.body" in
      let lx = fresh_label ctx "loop.exit" in
      seal ctx (Instr.Br lc) ~next:lc;
      let vc = compile_expr ctx c in
      seal ctx (Instr.Cond_br (vc, lb, lx)) ~next:lb;
      ctx.loops <- (lx, lc) :: ctx.loops;
      let saved = ctx.vars in
      compile_stmts ctx body;
      ctx.vars <- saved;
      ctx.loops <- List.tl ctx.loops;
      seal ctx (Instr.Br lc) ~next:lx
  | Return None ->
      seal ctx (Instr.Ret None) ~next:(fresh_label ctx "dead")
  | Return (Some e) ->
      let v = compile_expr ctx e in
      seal ctx (Instr.Ret (Some v)) ~next:(fresh_label ctx "dead")
  | Expr_stmt (Call (name, args)) ->
      let callee = find_func ctx.prog name in
      let vargs = List.map (compile_expr ctx) args in
      if callee.ret = None then emit ctx (Instr.Call_void (name, vargs))
      else ignore (assign ctx (Instr.Call (name, vargs)))
  | Expr_stmt e -> ignore (compile_expr ctx e)
  | Break -> (
      match ctx.loops with
      | (brk, _) :: _ -> seal ctx (Instr.Br brk) ~next:(fresh_label ctx "dead")
      | [] -> error "%s: break outside loop" ctx.fn.fn_name)
  | Continue -> (
      match ctx.loops with
      | (_, cont) :: _ -> seal ctx (Instr.Br cont) ~next:(fresh_label ctx "dead")
      | [] -> error "%s: continue outside loop" ctx.fn.fn_name)
  | Panic reason ->
      seal ctx (Instr.Panic reason) ~next:(fresh_label ctx "dead")

let compile_func prog tenv (f : func) : Instr.func =
  let ctx =
    {
      prog;
      fn = f;
      tenv;
      temp = 0;
      label = 0;
      done_blocks = [];
      cur_label = "entry";
      cur_insns = [];
      vars = [];
      loops = [];
    }
  in
  (* Params arrive as registers; copy each into a slot so the body can
     reassign them like locals. Aggregate params are pointers already. *)
  let params =
    List.map
      (fun (x, ty) ->
        let value_ty = Typecheck.eval_ty_of_var ty in
        (x ^ ".arg", lower_ty value_ty))
      f.params
  in
  List.iter
    (fun (x, ty) ->
      let value_ty = Typecheck.eval_ty_of_var ty in
      let slot = fresh_temp ctx in
      emit ctx (Instr.Assign (slot, Instr.Alloca (lower_ty value_ty)));
      emit ctx
        (Instr.Store (lower_ty value_ty, Instr.Reg (x ^ ".arg"), Instr.Reg slot));
      ctx.vars <- (x, (slot, Cell ty)) :: ctx.vars)
    f.params;
  compile_stmts ctx f.body;
  (* Fall-through at the end of the body. *)
  (match f.ret with
  | None -> seal ctx (Instr.Ret None) ~next:"unused"
  | Some _ -> seal ctx (Instr.Panic "missing return") ~next:"unused");
  {
    Instr.fn_name = f.fn_name;
    params;
    ret_ty = Option.map (fun t -> lower_ty (Typecheck.eval_ty_of_var t)) f.ret;
    entry = "entry";
    blocks = List.rev ctx.done_blocks;
  }

(* Compile a full program. Type checking runs first; the emitted Minir is
   then validated by the well-formedness checker, so a compiler bug
   cannot silently reach the verifier. *)
let compile (p : program) : Instr.program =
  Typecheck.check p;
  let tenv = lower_structs p.structs in
  let funcs = List.map (compile_func p tenv) p.funcs in
  let prog = { Instr.tenv; funcs } in
  Wellform.check_exn prog;
  prog
