(* Golite type rules — the single source of truth shared by the checker
   entry point and the compiler.

   Variables of aggregate type denote the *address* of their stack slot,
   so `Var x` where x : [4]int has type *[4]int. Field and index access
   go through pointers and auto-wrap aggregate results as pointers. *)

open Ast

type env = { vars : (string * ty) list; prog : program; fn : func }

let lookup env x =
  match List.assoc_opt x env.vars with
  | Some ty -> Some ty
  | None -> List.assoc_opt x env.fn.params

(* The type a variable *evaluates to*: aggregates evaluate to their
   address. *)
let eval_ty_of_var declared =
  if is_aggregate declared then Tptr declared else declared

let rec type_of_expr env (e : expr) : ty =
  match e with
  | Int _ -> Tint
  | Bool _ -> Tbool
  | Nil ty -> (
      match ty with
      | Tptr _ -> ty
      | _ -> error "nil must have a pointer type, got %s" (ty_to_string ty))
  | Var x -> (
      match lookup env x with
      | Some ty -> eval_ty_of_var ty
      | None -> error "%s: unknown variable %s" env.fn.fn_name x)
  | Unop (Not, e) ->
      expect env e Tbool;
      Tbool
  | Unop (Neg, e) ->
      expect env e Tint;
      Tint
  | Binop ((Add | Sub | Mul | Div | Rem), a, b) ->
      expect env a Tint;
      expect env b Tint;
      Tint
  | Binop ((Lt | Le | Gt | Ge), a, b) ->
      expect env a Tint;
      expect env b Tint;
      Tbool
  | Binop ((And | Or), a, b) ->
      expect env a Tbool;
      expect env b Tbool;
      Tbool
  | Binop ((Eq | Ne), a, b) ->
      let ta = type_of_expr env a and tb = type_of_expr env b in
      if not (equal_ty ta tb) then
        error "%s: comparing %s with %s" env.fn.fn_name (ty_to_string ta)
          (ty_to_string tb);
      (match ta with
      | Tint | Tbool | Tptr _ -> ()
      | Tstruct _ | Tarray _ ->
          error "%s: aggregate equality is not supported" env.fn.fn_name);
      Tbool
  | Field (e, f) -> (
      match type_of_expr env e with
      | Tptr (Tstruct s) ->
          let fty = field_ty env.prog s f in
          if is_aggregate fty then Tptr fty else fty
      | ty ->
          error "%s: field access .%s through non-struct-pointer %s"
            env.fn.fn_name f (ty_to_string ty))
  | Index (e, i) -> (
      expect env i Tint;
      match type_of_expr env e with
      | Tptr (Tarray (elt, _)) -> if is_aggregate elt then Tptr elt else elt
      | ty ->
          error "%s: indexing through non-array-pointer %s" env.fn.fn_name
            (ty_to_string ty))
  | Call (name, args) -> (
      let callee = find_func env.prog name in
      if List.length callee.params <> List.length args then
        error "%s: wrong arity calling %s" env.fn.fn_name name;
      List.iter2
        (fun (pname, pty) arg ->
          let want = eval_ty_of_var pty in
          let got = type_of_expr env arg in
          if not (equal_ty want got) then
            error "%s: argument %s of %s expects %s, got %s" env.fn.fn_name
              pname name (ty_to_string want) (ty_to_string got))
        callee.params args;
      match callee.ret with
      | Some ty -> ty
      | None -> error "%s: void call %s used as a value" env.fn.fn_name name)
  | New ty ->
      if not (is_aggregate ty) then
        error "%s: new of non-aggregate %s" env.fn.fn_name (ty_to_string ty);
      Tptr ty

and expect env e want =
  let got = type_of_expr env e in
  if not (equal_ty got want) then
    error "%s: expected %s, got %s" env.fn.fn_name (ty_to_string want)
      (ty_to_string got)

let type_of_lvalue env = function
  | Lvar x -> (
      match lookup env x with
      | Some ty ->
          if is_aggregate ty then
            error "%s: cannot assign whole aggregate %s" env.fn.fn_name x
          else ty
      | None -> error "%s: unknown variable %s" env.fn.fn_name x)
  | Lfield (e, f) -> (
      match type_of_expr env e with
      | Tptr (Tstruct s) ->
          let fty = field_ty env.prog s f in
          if is_aggregate fty then
            error "%s: cannot assign whole aggregate field %s" env.fn.fn_name f
          else fty
      | ty ->
          error "%s: field assignment through %s" env.fn.fn_name
            (ty_to_string ty))
  | Lindex (e, i) -> (
      expect env i Tint;
      match type_of_expr env e with
      | Tptr (Tarray (elt, _)) ->
          if is_aggregate elt then
            error "%s: cannot assign whole aggregate element" env.fn.fn_name
          else elt
      | ty ->
          error "%s: index assignment through %s" env.fn.fn_name
            (ty_to_string ty))

(* Full-program checking: every statement of every function. *)
let rec check_stmts env (in_loop : bool) (stmts : stmt list) : env =
  List.fold_left (fun env s -> check_stmt env in_loop s) env stmts

and check_stmt env in_loop (s : stmt) : env =
  match s with
  | Declare (x, ty, init) ->
      (match init with
      | Some e ->
          if is_aggregate ty then
            error "%s: aggregate %s cannot have an initializer" env.fn.fn_name x
          else expect env e ty
      | None -> ());
      { env with vars = (x, ty) :: env.vars }
  | Assign (lv, e) ->
      let want = type_of_lvalue env lv in
      expect env e want;
      env
  | If (c, then_, else_) ->
      expect env c Tbool;
      ignore (check_stmts env in_loop then_);
      ignore (check_stmts env in_loop else_);
      env
  | While (c, body) ->
      expect env c Tbool;
      ignore (check_stmts env true body);
      env
  | Return None ->
      if env.fn.ret <> None then
        error "%s: missing return value" env.fn.fn_name;
      env
  | Return (Some e) -> (
      match env.fn.ret with
      | Some ty ->
          let want = eval_ty_of_var ty in
          expect env e want;
          env
      | None -> error "%s: return with value in void function" env.fn.fn_name)
  | Expr_stmt (Call (name, _) as e) ->
      let callee = find_func env.prog name in
      (match callee.ret with
      | None ->
          (* Re-run argument checking without demanding a value. *)
          let env' = env in
          (match e with
          | Call (_, args) ->
              List.iter2
                (fun (pname, pty) arg ->
                  let want = eval_ty_of_var pty in
                  let got = type_of_expr env' arg in
                  if not (equal_ty want got) then
                    error "%s: argument %s of %s expects %s, got %s"
                      env.fn.fn_name pname name (ty_to_string want)
                      (ty_to_string got))
                callee.params args
          | _ -> ())
      | Some _ -> ignore (type_of_expr env e));
      env
  | Expr_stmt e ->
      ignore (type_of_expr env e);
      env
  | Break | Continue ->
      if not in_loop then error "%s: break/continue outside loop" env.fn.fn_name;
      env
  | Panic _ -> env

let check_func prog (f : func) =
  let env = { vars = []; prog; fn = f } in
  (* Duplicate parameter names are a frontend bug. *)
  let rec dup = function
    | [] -> ()
    | (x, _) :: rest ->
        if List.mem_assoc x rest then error "%s: duplicate parameter %s" f.fn_name x
        else dup rest
  in
  dup f.params;
  ignore (check_stmts env false f.body)

let check (p : program) =
  List.iter
    (fun (s : struct_def) ->
      List.iter
        (fun (_, ty) ->
          let rec known = function
            | Tstruct name ->
                ignore (find_struct p name)
            | Tptr t | Tarray (t, _) -> known t
            | Tint | Tbool -> ()
          in
          known ty)
        s.fields)
    p.structs;
  List.iter (check_func p) p.funcs
