(* Parsing Golite concrete syntax (the Go-like text Print emits).

   Hand-rolled lexer + recursive-descent parser with precedence
   climbing. Statements are newline-terminated; blocks are braced.
   The grammar is exactly what [Print] produces, and the round trip
   parse ∘ print = id is property-tested over the engine sources. *)

type token =
    IDENT of string
  | INT of int
  | STRING of string
  | PUNCT of string
  | NEWLINE
  | EOF
exception Parse_error of { line : int; message : string; }
val parse_error : int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val keywords : string list
val is_ident_start : char -> bool
val is_ident_char : char -> bool
val is_digit : char -> bool
val tokenize : string -> (token * int) list
type state = { mutable toks : (token * int) list; }
val peek : state -> token
val line_of : state -> int
val advance : state -> unit
val skip_newlines : state -> unit
val expect_punct : state -> string -> unit
val expect_ident : state -> string
val expect_keyword : state -> string -> unit
val end_of_stmt : state -> unit
val parse_ty : state -> Ast.ty
val binop_of_token : string -> (Ast.binop * int) option
val parse_expr : state -> Ast.expr
val parse_binary : state -> int -> Ast.expr
val parse_unary : state -> Ast.expr
val parse_postfix : state -> Ast.expr
val parse_primary : state -> Ast.expr
val parse_call_args : state -> Ast.expr list
val lvalue_of_expr : state -> Ast.expr -> Ast.lvalue
val parse_block : state -> Ast.stmt list
val parse_stmt : state -> Ast.stmt
val parse_struct : state -> Ast.struct_def
val parse_func : state -> Ast.func
val program_of_string : string -> (Ast.program, string) result
val program_of_string_exn : string -> Ast.program
