(* Parsing Golite concrete syntax (the Go-like text Print emits).

   Hand-rolled lexer + recursive-descent parser with precedence
   climbing. Statements are newline-terminated; blocks are braced.
   The grammar is exactly what [Print] produces, and the round trip
   parse ∘ print = id is property-tested over the engine sources. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | PUNCT of string (* operators and delimiters *)
  | NEWLINE
  | EOF

exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let keywords =
  [ "func"; "struct"; "var"; "if"; "else"; "while"; "return"; "break";
    "continue"; "panic"; "new"; "nil"; "true"; "false" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      emit NEWLINE;
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (IDENT (String.sub src start (!i - start)))
    end
    else if c = '"' then begin
      (* String literal with the usual escapes (as produced by %S). *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '"' then begin
          closed := true;
          incr i
        end
        else if c = '\\' && !i + 1 < n then begin
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | c -> Buffer.add_char buf c);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      if not !closed then parse_error !line "unterminated string literal";
      emit (STRING (Buffer.contents buf))
    end
    else begin
      (* punctuation; longest match first *)
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" ->
          emit (PUNCT two);
          i := !i + 2
      | _ -> (
          match c with
          | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '!' | '(' | ')'
          | '{' | '}' | '[' | ']' | ',' | '.' ->
              emit (PUNCT (String.make 1 c));
              incr i
          | c -> parse_error !line "unexpected character %C" c)
    end
  done;
  emit EOF;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser state                                                       *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> EOF
let line_of st = match st.toks with (_, l) :: _ -> l | [] -> 0
let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let skip_newlines st =
  while peek st = NEWLINE do
    advance st
  done

let expect_punct st p =
  match peek st with
  | PUNCT q when q = p -> advance st
  | t ->
      parse_error (line_of st) "expected %S, found %s" p
        (match t with
        | IDENT s -> s
        | INT n -> string_of_int n
        | STRING _ -> "<string>"
        | PUNCT q -> q
        | NEWLINE -> "<newline>"
        | EOF -> "<eof>")

let expect_ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | _ -> parse_error (line_of st) "expected an identifier"

let expect_keyword st kw =
  match peek st with
  | IDENT s when s = kw -> advance st
  | _ -> parse_error (line_of st) "expected %S" kw

let end_of_stmt st =
  match peek st with
  | NEWLINE ->
      skip_newlines st
  | PUNCT "}" | EOF -> () (* closing brace may follow directly *)
  | _ -> parse_error (line_of st) "expected end of statement"

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

let rec parse_ty st : ty =
  match peek st with
  | PUNCT "*" ->
      advance st;
      Tptr (parse_ty st)
  | PUNCT "[" ->
      advance st;
      let n =
        match peek st with
        | INT n ->
            advance st;
            n
        | _ -> parse_error (line_of st) "expected an array capacity"
      in
      expect_punct st "]";
      Tarray (parse_ty st, n)
  | IDENT "int" ->
      advance st;
      Tint
  | IDENT "bool" ->
      advance st;
      Tbool
  | IDENT s when not (List.mem s keywords) ->
      advance st;
      Tstruct s
  | _ -> parse_error (line_of st) "expected a type"

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing, matching Print's table)          *)
(* ------------------------------------------------------------------ *)

let binop_of_token = function
  | "||" -> Some (Or, 1)
  | "&&" -> Some (And, 2)
  | "==" -> Some (Eq, 3)
  | "!=" -> Some (Ne, 3)
  | "<" -> Some (Lt, 3)
  | "<=" -> Some (Le, 3)
  | ">" -> Some (Gt, 3)
  | ">=" -> Some (Ge, 3)
  | "+" -> Some (Add, 4)
  | "-" -> Some (Sub, 4)
  | "*" -> Some (Mul, 5)
  | "/" -> Some (Div, 5)
  | "%" -> Some (Rem, 5)
  | _ -> None

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec : expr =
  let left = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | PUNCT p -> (
        match binop_of_token p with
        | Some (op, prec) when prec >= min_prec ->
            advance st;
            let right = parse_binary st (prec + 1) in
            left := Binop (op, !left, right)
        | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !left

and parse_unary st : expr =
  match peek st with
  | PUNCT "!" ->
      advance st;
      Unop (Not, parse_unary st)
  | PUNCT "-" -> (
      advance st;
      (* Negative integer literals fold immediately, so that printed
         literals like (-1) round-trip to [Int (-1)]. *)
      match parse_unary st with
      | Int n -> Int (-n)
      | e -> Unop (Neg, e))
  | _ -> parse_postfix st

and parse_postfix st : expr =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | PUNCT "." ->
        advance st;
        let f = expect_ident st in
        e := Field (!e, f)
    | PUNCT "[" ->
        advance st;
        let idx = parse_expr st in
        expect_punct st "]";
        e := Index (!e, idx)
    | _ -> continue_ := false
  done;
  !e

and parse_primary st : expr =
  match peek st with
  | INT n ->
      advance st;
      Int n
  | IDENT "true" ->
      advance st;
      Bool true
  | IDENT "false" ->
      advance st;
      Bool false
  | IDENT "nil" ->
      advance st;
      expect_punct st "(";
      let ty = parse_ty st in
      expect_punct st ")";
      (match ty with
      | Tptr _ -> Nil ty
      | _ -> parse_error (line_of st) "nil requires a pointer type")
  | IDENT "new" ->
      advance st;
      expect_punct st "(";
      let ty = parse_ty st in
      expect_punct st ")";
      New ty
  | IDENT name when not (List.mem name keywords) -> (
      advance st;
      match peek st with
      | PUNCT "(" ->
          advance st;
          let args = parse_call_args st in
          Call (name, args)
      | _ -> Var name)
  | PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | _ -> parse_error (line_of st) "expected an expression"

and parse_call_args st : expr list =
  match peek st with
  | PUNCT ")" ->
      advance st;
      []
  | _ ->
      let rec more acc =
        let acc = parse_expr st :: acc in
        match peek st with
        | PUNCT "," ->
            advance st;
            more acc
        | PUNCT ")" ->
            advance st;
            List.rev acc
        | _ -> parse_error (line_of st) "expected ',' or ')'"
      in
      more []

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let lvalue_of_expr st = function
  | Var x -> Lvar x
  | Field (e, f) -> Lfield (e, f)
  | Index (e, idx) -> Lindex (e, idx)
  | _ -> parse_error (line_of st) "this expression cannot be assigned to"

let rec parse_block st : stmt list =
  expect_punct st "{";
  skip_newlines st;
  let rec go acc =
    match peek st with
    | PUNCT "}" ->
        advance st;
        List.rev acc
    | EOF -> parse_error (line_of st) "unterminated block"
    | _ ->
        let s = parse_stmt st in
        end_of_stmt st;
        go (s :: acc)
  in
  go []

and parse_stmt st : stmt =
  match peek st with
  | IDENT "var" ->
      advance st;
      let x = expect_ident st in
      let ty = parse_ty st in
      let init =
        match peek st with
        | PUNCT "=" ->
            advance st;
            Some (parse_expr st)
        | _ -> None
      in
      Declare (x, ty, init)
  | IDENT "if" ->
      advance st;
      let c = parse_expr st in
      let then_ = parse_block st in
      let else_ =
        match peek st with
        | IDENT "else" ->
            advance st;
            parse_block st
        | _ -> []
      in
      If (c, then_, else_)
  | IDENT "while" ->
      advance st;
      let c = parse_expr st in
      While (c, parse_block st)
  | IDENT "return" -> (
      advance st;
      match peek st with
      | NEWLINE | PUNCT "}" | EOF -> Return None
      | _ -> Return (Some (parse_expr st)))
  | IDENT "break" ->
      advance st;
      Break
  | IDENT "continue" ->
      advance st;
      Continue
  | IDENT "panic" -> (
      advance st;
      expect_punct st "(";
      match peek st with
      | STRING msg ->
          advance st;
          expect_punct st ")";
          Panic msg
      | _ -> parse_error (line_of st) "panic expects a string literal")
  | _ -> (
      (* assignment or expression statement *)
      let e = parse_expr st in
      match peek st with
      | PUNCT "=" ->
          advance st;
          let rhs = parse_expr st in
          Assign (lvalue_of_expr st e, rhs)
      | _ -> Expr_stmt e)

(* ------------------------------------------------------------------ *)
(* Declarations                                                       *)
(* ------------------------------------------------------------------ *)

let parse_struct st : struct_def =
  expect_keyword st "struct";
  let sname = expect_ident st in
  expect_punct st "{";
  skip_newlines st;
  let rec fields acc =
    match peek st with
    | PUNCT "}" ->
        advance st;
        List.rev acc
    | IDENT _ ->
        let fname = expect_ident st in
        let ty = parse_ty st in
        end_of_stmt st;
        fields ((fname, ty) :: acc)
    | _ -> parse_error (line_of st) "expected a field or '}'"
  in
  { sname; fields = fields [] }

let parse_func st : func =
  expect_keyword st "func";
  let fn_name = expect_ident st in
  expect_punct st "(";
  let params =
    match peek st with
    | PUNCT ")" ->
        advance st;
        []
    | _ ->
        let rec more acc =
          let x = expect_ident st in
          let ty = parse_ty st in
          match peek st with
          | PUNCT "," ->
              advance st;
              more ((x, ty) :: acc)
          | PUNCT ")" ->
              advance st;
              List.rev ((x, ty) :: acc)
          | _ -> parse_error (line_of st) "expected ',' or ')'"
        in
        more []
  in
  let ret = match peek st with PUNCT "{" -> None | _ -> Some (parse_ty st) in
  let body = parse_block st in
  { fn_name; params; ret; body }

let program_of_string (src : string) : (program, string) result =
  try
    let st = { toks = tokenize src } in
    let structs = ref [] and funcs = ref [] in
    skip_newlines st;
    let rec go () =
      match peek st with
      | EOF -> ()
      | IDENT "struct" ->
          structs := parse_struct st :: !structs;
          skip_newlines st;
          go ()
      | IDENT "func" ->
          funcs := parse_func st :: !funcs;
          skip_newlines st;
          go ()
      | _ -> parse_error (line_of st) "expected 'struct' or 'func'"
    in
    go ();
    Ok { structs = List.rev !structs; funcs = List.rev !funcs }
  with Parse_error { line; message } ->
    Error (Printf.sprintf "line %d: %s" line message)

let program_of_string_exn src =
  match program_of_string src with
  | Ok p -> p
  | Error m -> invalid_arg ("Golite.Parse: " ^ m)
