(* Builder combinators for writing Golite programs in OCaml.

   The engine versions under lib/engine are written against this API, so
   their source reads close to the Go pseudo-code in the paper (Figures
   3, 4). *)

include Ast

(* Types *)
let tint = Tint
let tbool = Tbool
let tptr t = Tptr t
let tstruct s = Tstruct s
let tarray t n = Tarray (t, n)

(* Expressions *)
let i n = Int n
let b v = Bool v
let v x = Var x
let nil t = Nil (Tptr t)

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( % ) a b = Binop (Rem, a, b)
let ( == ) a b = Binop (Eq, a, b)
let ( != ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let not_ e = Unop (Not, e)
let neg e = Unop (Neg, e)

(* `%`-class operators share `*`'s precedence (left-associative): tighter
   than `+` and comparisons, looser than function application. So
   `v "p" %. "x" + v "p" %. "y"` parses as expected. Caveat: they tie
   with `*` / `/`, so parenthesize when multiplying a field access. *)
let ( %. ) e f = Field (e, f) (* p %. "field" *)
let ( %@ ) e idx = Index (e, idx) (* arr %@ index *)
let call f args = Call (f, args)
let new_ t = New t

(* Statements *)
let decl x ty = Declare (x, ty, None)
let decl_init x ty e = Declare (x, ty, Some e)
let set x e = Assign (Lvar x, e)
let set_field p f e = Assign (Lfield (p, f), e)
let set_index a idx e = Assign (Lindex (a, idx), e)
let if_ c then_ else_ = If (c, then_, else_)
let when_ c then_ = If (c, then_, [])
let while_ c body = While (c, body)
let return e = Return (Some e)
let return_void = Return None
let expr e = Expr_stmt e
let break_ = Break
let continue_ = Continue
let panic msg = Panic msg

(* A C-style for loop:  for (x = init; cond; x = x + step) body *)
let for_ x ~init ~cond ~step body =
  [
    decl_init x tint init;
    while_ cond (body @ [ set x (Binop (Add, Var x, Int step)) ]);
  ]

(* Declarations *)
let func fn_name ~params ~ret body = { fn_name; params; ret; body }
let struct_ sname fields = { sname; fields }
let program structs funcs = { structs; funcs }
