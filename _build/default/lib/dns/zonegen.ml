(* Random zone-configuration generation (§6.5, §9).

   The paper's control-plane scripts generate tens of thousands of zones,
   favouring complex names (wildcards at various positions) and
   intertwined records (sub-domains, NS referrals, glue, CNAME chains),
   so the concrete domain tree exercises diverse matching scenarios.
   This module reproduces that distribution with an explicit seeded RNG
   so every experiment is replayable. *)

type config = {
  max_depth : int; (* label depth below the origin *)
  max_children : int; (* fanout per interior node *)
  wildcard_prob : float;
  delegation_prob : float;
  cname_prob : float;
  mx_prob : float;
  txt_prob : float;
  max_rrs_per_node : int;
}

let default_config =
  {
    max_depth = 3;
    max_children = 3;
    wildcard_prob = 0.25;
    delegation_prob = 0.2;
    cname_prob = 0.2;
    mx_prob = 0.25;
    txt_prob = 0.15;
    max_rrs_per_node = 3;
  }

let label_pool =
  [|
    "www"; "mail"; "ns1"; "ns2"; "api"; "cdn"; "dev"; "web"; "cs"; "zoo";
    "app"; "ftp"; "db"; "eu"; "us"; "blog"; "shop"; "login"; "m"; "a"; "b";
  |]

let pick_label rng = label_pool.(Random.State.int rng (Array.length label_pool))

type gen_state = {
  rng : Random.State.t;
  cfg : config;
  mutable records : Rr.t list;
  mutable next_addr : int;
  mutable host_names : Name.t list; (* names that got A records *)
  mutable owners : Name.t list; (* every owner name emitted so far *)
}

let fresh_addr st =
  let a = st.next_addr in
  st.next_addr <- a + 1;
  a

let add st (r : Rr.t) =
  st.records <- r :: st.records;
  if not (List.exists (Name.equal r.Rr.rname) st.owners) then
    st.owners <- r.Rr.rname :: st.owners

let taken st name = List.exists (Name.equal name) st.owners
let flip st p = Random.State.float st.rng 1.0 < p

(* Emit data records for one node. *)
let populate_node st name ~allow_cname =
  let emitted = ref 0 in
  let emit r =
    add st r;
    incr emitted
  in
  if
    allow_cname
    && (not (taken st name))
    && flip st st.cfg.cname_prob
    && st.host_names <> []
  then
    (* CNAME owners hold nothing else (validated exclusivity). *)
    let target =
      List.nth st.host_names (Random.State.int st.rng (List.length st.host_names))
    in
    emit (Rr.cname name target)
  else begin
    emit (Rr.a name (fresh_addr st));
    st.host_names <- name :: st.host_names;
    if flip st 0.3 && !emitted < st.cfg.max_rrs_per_node then
      emit (Rr.aaaa name (fresh_addr st));
    if flip st st.cfg.mx_prob && !emitted < st.cfg.max_rrs_per_node then begin
      (* Wildcard owners cannot have children ('*' must stay leftmost),
         so their MX exchange hangs off the wildcard's parent. *)
      let exchange_base =
        match Name.labels name with
        | l :: rest when Label.is_wildcard l -> Name.of_labels rest
        | _ -> name
      in
      let exchange = Name.child (Label.of_string_exn "mail") exchange_base in
      emit (Rr.mx name (10 * (1 + Random.State.int st.rng 3)) exchange);
      (* Sometimes provide the exchange's address (additional-section
         material), sometimes not. *)
      if flip st 0.7 && not (taken st exchange) then begin
        emit (Rr.a exchange (fresh_addr st));
        st.host_names <- exchange :: st.host_names
      end
    end;
    if flip st st.cfg.txt_prob && !emitted < st.cfg.max_rrs_per_node then
      emit (Rr.txt name "generated")
  end

(* Emit a delegation at [name]: NS records plus in-zone glue. *)
let delegate st name =
  let ns1 = Name.child (Label.of_string_exn "ns1") name in
  add st (Rr.ns name (Name.of_string_exn "ns-out.other-org"));
  add st (Rr.ns name ns1);
  (* Glue for the in-bailiwick server. *)
  add st (Rr.a ns1 (fresh_addr st))

let rec gen_subtree st name depth =
  if depth < st.cfg.max_depth then begin
    let n_children = Random.State.int st.rng (st.cfg.max_children + 1) in
    let used = ref [] in
    for _ = 1 to n_children do
      let l = pick_label st.rng in
      if not (List.mem l !used) then begin
        used := l :: !used;
        let child = Name.child (Label.of_string_exn l) name in
        if flip st st.cfg.delegation_prob && depth > 0 && not (taken st child)
        then delegate st child
        else begin
          populate_node st child ~allow_cname:true;
          gen_subtree st child (depth + 1)
        end
      end
    done;
    (* Wildcards at various positions (§9 favours them). *)
    if flip st st.cfg.wildcard_prob then begin
      let wc = Name.child Label.wildcard name in
      populate_node st wc ~allow_cname:(flip st 0.3)
    end
  end

(* Generate one pseudo-random zone for [origin] from [seed]. *)
let generate ?(config = default_config) ~seed origin : Zone.t =
  let rng = Random.State.make [| seed |] in
  let st =
    {
      rng;
      cfg = config;
      records = [];
      next_addr = 1;
      host_names = [];
      owners = [];
    }
  in
  add st (Rr.soa origin ~mname:(Name.child (Label.of_string_exn "ns1") origin) ~serial:seed);
  add st (Rr.ns origin (Name.child (Label.of_string_exn "ns1") origin));
  add st (Rr.a (Name.child (Label.of_string_exn "ns1") origin) (fresh_addr st));
  populate_node st origin ~allow_cname:false;
  gen_subtree st origin 0;
  let z = Zone.make origin (List.rev st.records) in
  (* The generator must only produce valid zones; a validation failure
     here is a generator bug. *)
  if not (Zone.is_valid z) then begin
    List.iter (fun e -> Format.eprintf "zonegen: %a@." Zone.pp_error e)
      (Zone.validate z);
    assert false
  end;
  z

(* A batch of zones with distinct seeds. *)
let generate_many ?config ~seed ~count origin =
  List.init count (fun i -> generate ?config ~seed:(seed + i) origin)

(* ------------------------------------------------------------------ *)
(* Random queries against a zone: a mix of existing names, subdomains
   of existing names, wildcard-covered names and garbage.             *)
(* ------------------------------------------------------------------ *)

let random_query ~rng (z : Zone.t) : Message.query =
  let owners = Array.of_list (Zone.owner_names z) in
  let qtype =
    match Random.State.int rng 6 with
    | 0 -> Rr.A
    | 1 -> Rr.AAAA
    | 2 -> Rr.MX
    | 3 -> Rr.NS
    | 4 -> Rr.CNAME
    | _ -> Rr.TXT
  in
  let base =
    if Array.length owners = 0 then Zone.origin z
    else owners.(Random.State.int rng (Array.length owners))
  in
  (* Replace a wildcard owner by a random concrete label so wildcard
     synthesis is exercised. *)
  let base =
    match Name.labels base with
    | l :: rest when Label.is_wildcard l ->
        Name.of_labels (Label.of_string_exn (pick_label rng) :: rest)
    | _ -> base
  in
  let qname =
    match Random.State.int rng 4 with
    | 0 -> base
    | 1 -> Name.child (Label.of_string_exn (pick_label rng)) base
    | 2 ->
        Name.child
          (Label.of_string_exn (pick_label rng))
          (Name.child (Label.of_string_exn (pick_label rng)) base)
    | _ -> (
        (* A sibling that likely does not exist. *)
        match Name.parent base with
        | Some p -> Name.child (Label.of_string_exn (pick_label rng)) p
        | None -> base)
  in
  Message.query qname qtype
