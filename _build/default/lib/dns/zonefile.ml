(* A minimal master-file style textual zone format, for the CLI, the
   examples, and golden tests.

   Line format (whitespace-separated):
     <owner> <ttl> <TYPE> <rdata...>
   Comments start with ';'. The first line must be a $ORIGIN directive:
     $ORIGIN example.com.
   Owner names may be written relative to the origin or fully qualified
   with a trailing dot. '@' denotes the origin. *)

let render (z : Zone.t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "$ORIGIN %s.\n" (Name.to_string (Zone.origin z)));
  List.iter
    (fun (r : Rr.t) ->
      let owner =
        if Name.equal r.Rr.rname (Zone.origin z) then "@"
        else Name.to_string r.Rr.rname ^ "."
      in
      let rdata =
        match r.Rr.rdata with
        | Rr.Addr a -> string_of_int a
        | Rr.Host n -> Name.to_string n ^ "."
        | Rr.Mx (p, n) -> Printf.sprintf "%d %s." p (Name.to_string n)
        | Rr.Srv (p, w, port, n) ->
            Printf.sprintf "%d %d %d %s." p w port (Name.to_string n)
        | Rr.Text s -> Printf.sprintf "%S" s
        | Rr.Soa_data s ->
            Printf.sprintf "%s. %s. %d %d %d %d %d" (Name.to_string s.Rr.mname)
              (Name.to_string s.Rr.rname) s.Rr.serial s.Rr.refresh s.Rr.retry
              s.Rr.expire s.Rr.minimum
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %d %s %s\n" owner r.Rr.ttl
           (Rr.rtype_to_string r.Rr.rtype)
           rdata))
    (Zone.records z);
  Buffer.contents buf

exception Parse_error of int * string

let parse_error line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let parse (text : string) : (Zone.t, string) result =
  let lines = String.split_on_char '\n' text in
  let origin = ref None in
  let records = ref [] in
  let resolve_name lineno s =
    match s with
    | "@" -> (
        match !origin with
        | Some o -> o
        | None -> parse_error lineno "@ before $ORIGIN")
    | s when String.length s > 0 && s.[String.length s - 1] = '.' ->
        Name.of_string_exn s
    | s -> (
        match !origin with
        | Some o -> Name.of_string_exn s @ o
        | None -> parse_error lineno "relative name before $ORIGIN")
  in
  try
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        let line =
          match String.index_opt line ';' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let tokens =
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun t -> t <> "")
        in
        match tokens with
        | [] -> ()
        | [ "$ORIGIN"; o ] -> origin := Some (Name.of_string_exn o)
        | "$ORIGIN" :: _ -> parse_error lineno "malformed $ORIGIN"
        | owner :: ttl :: rtype :: rdata_tokens -> (
            let rname = resolve_name lineno owner in
            let ttl =
              match int_of_string_opt ttl with
              | Some t -> t
              | None -> parse_error lineno "bad TTL %s" ttl
            in
            let rtype =
              match Rr.rtype_of_string rtype with
              | Some t -> t
              | None -> parse_error lineno "unknown type %s" rtype
            in
            let int_tok t =
              match int_of_string_opt t with
              | Some n -> n
              | None -> parse_error lineno "expected integer, got %s" t
            in
            let rdata =
              match (rtype, rdata_tokens) with
              | (Rr.A | Rr.AAAA), [ a ] -> Rr.Addr (int_tok a)
              | (Rr.NS | Rr.CNAME | Rr.PTR), [ n ] ->
                  Rr.Host (resolve_name lineno n)
              | Rr.MX, [ p; n ] -> Rr.Mx (int_tok p, resolve_name lineno n)
              | Rr.SRV, [ p; w; port; n ] ->
                  Rr.Srv (int_tok p, int_tok w, int_tok port, resolve_name lineno n)
              | Rr.TXT, [ s ] when String.length s >= 2 && s.[0] = '"' ->
                  Rr.Text (Scanf.sscanf s "%S" (fun x -> x))
              | Rr.TXT, toks -> Rr.Text (String.concat " " toks)
              | Rr.SOA, [ mname; rn; serial; refresh; retry; expire; minimum ]
                ->
                  Rr.Soa_data
                    {
                      Rr.mname = resolve_name lineno mname;
                      rname = resolve_name lineno rn;
                      serial = int_tok serial;
                      refresh = int_tok refresh;
                      retry = int_tok retry;
                      expire = int_tok expire;
                      minimum = int_tok minimum;
                    }
              | _ -> parse_error lineno "malformed rdata for %s" (Rr.rtype_to_string rtype)
            in
            records := Rr.make ~ttl rname rtype rdata :: !records)
        | _ -> parse_error lineno "malformed record line")
      lines;
    match !origin with
    | None -> Error "no $ORIGIN directive"
    | Some o -> Ok (Zone.make o (List.rev !records))
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg
