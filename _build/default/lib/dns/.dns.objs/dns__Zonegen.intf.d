lib/dns/zonegen.mli: Message Name Random Rr Zone
