lib/dns/zonegen.ml: Array Format Label List Message Name Random Rr Zone
