lib/dns/zone.mli: Format Name Rr
