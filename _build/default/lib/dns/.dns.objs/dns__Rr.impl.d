lib/dns/rr.ml: Format Name String
