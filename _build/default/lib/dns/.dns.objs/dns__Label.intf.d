lib/dns/label.mli: Format Hashtbl String
