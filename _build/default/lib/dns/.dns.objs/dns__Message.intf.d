lib/dns/message.mli: Format Name Rr
