lib/dns/message.ml: Format List Name Rr
