lib/dns/name.mli: Format Label String
