lib/dns/label.ml: Format Hashtbl Printf String
