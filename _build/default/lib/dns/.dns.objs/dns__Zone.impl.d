lib/dns/zone.ml: Format Label List Name Rr
