lib/dns/name.ml: Array Char Format Label List String
