lib/dns/zonefile.mli: Format Zone
