lib/dns/rr.mli: Format Name
