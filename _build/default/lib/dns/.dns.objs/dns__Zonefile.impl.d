lib/dns/zonefile.ml: Buffer Format List Name Printf Rr Scanf String Zone
