(* Zone configurations: an origin plus its resource records, with the
   structural validation the control plane performs before handing a
   zone to the engine (§6.5). *)

type t = { origin : Name.t; records : Rr.t list }

let make origin records = { origin; records }
let origin z = z.origin
let records z = z.records
let record_count z = List.length z.records

(* All records owned by [name]. *)
let records_at z name =
  List.filter (fun (r : Rr.t) -> Name.equal r.Rr.rname name) z.records

let records_at_typed z name rtype =
  List.filter
    (fun (r : Rr.t) ->
      Name.equal r.Rr.rname name && Rr.equal_rtype r.Rr.rtype rtype)
    z.records

(* Every distinct owner name in the zone. *)
let owner_names z =
  List.fold_left
    (fun acc (r : Rr.t) ->
      if List.exists (Name.equal r.Rr.rname) acc then acc else r.Rr.rname :: acc)
    [] z.records
  |> List.rev

let soa_record z =
  List.find_opt
    (fun (r : Rr.t) ->
      Rr.equal_rtype r.Rr.rtype Rr.SOA && Name.equal r.Rr.rname z.origin)
    z.records

(* A name is a delegation point if it owns NS records and is not the
   apex. *)
let is_delegation z name =
  (not (Name.equal name z.origin)) && records_at_typed z name Rr.NS <> []

(* The closest delegation point strictly above-or-at [name] (excluding
   the apex), i.e. the zone cut that puts [name] out of authority. *)
let covering_delegation z name =
  let rec climb n =
    if Name.equal n z.origin then None
    else if is_delegation z n then Some n
    else match Name.parent n with None -> None | Some p -> climb p
  in
  if Name.is_under ~ancestor:z.origin name then climb name else None

(* Does the zone contain the exact node [name] (some record owned by it),
   or is [name] an empty non-terminal (a record exists strictly below)? *)
let node_exists z name =
  List.exists
    (fun (r : Rr.t) -> Name.is_under ~ancestor:name r.Rr.rname)
    z.records

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

type error =
  | No_soa
  | Out_of_zone of Rr.t
  | Rdata_shape of Rr.t
  | Cname_conflict of Name.t (* CNAME plus other data at the same name *)
  | Wildcard_position of Rr.t (* '*' not leftmost *)

let pp_error fmt = function
  | No_soa -> Format.pp_print_string fmt "zone has no SOA at the apex"
  | Out_of_zone r -> Format.fprintf fmt "record out of zone: %a" Rr.pp r
  | Rdata_shape r -> Format.fprintf fmt "rdata/type mismatch: %a" Rr.pp r
  | Cname_conflict n ->
      Format.fprintf fmt "CNAME and other data at %a" Name.pp n
  | Wildcard_position r ->
      Format.fprintf fmt "wildcard label not leftmost: %a" Rr.pp r

let validate (z : t) : error list =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  if soa_record z = None then add No_soa;
  List.iter
    (fun (r : Rr.t) ->
      if not (Name.is_under ~ancestor:z.origin r.Rr.rname) then
        add (Out_of_zone r);
      if not (Rr.rdata_matches_rtype r.Rr.rtype r.Rr.rdata) then
        add (Rdata_shape r);
      let wildcard_inside = function
        | [] | [ _ ] -> false
        | _ :: rest -> List.exists Label.is_wildcard rest
      in
      (* '*' may appear only as the leftmost label of an owner name. *)
      if wildcard_inside (Name.labels r.Rr.rname) then
        add (Wildcard_position r))
    z.records;
  (* CNAME exclusivity: a CNAME owner may hold nothing else. *)
  List.iter
    (fun name ->
      let rs = records_at z name in
      let has_cname =
        List.exists (fun (r : Rr.t) -> Rr.equal_rtype r.Rr.rtype Rr.CNAME) rs
      in
      if has_cname && List.length rs > 1 then add (Cname_conflict name))
    (owner_names z);
  List.rev !errs

let is_valid z = validate z = []

let pp fmt z =
  Format.fprintf fmt "; zone %a (%d records)@." Name.pp z.origin
    (record_count z);
  List.iter (fun r -> Format.fprintf fmt "%a@." Rr.pp r) z.records
