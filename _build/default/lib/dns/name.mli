(* Domain names.

   Stored in presentation order (["www"; "example"; "com"]). The tree /
   verification side works with the *reversed* order (com first), which
   is how the paper encodes names as integer lists (Figure 10), and the
   wire form is the raw length-prefixed byte representation that
   compareRaw iterates over (Figure 4). *)

type t = Label.t list
val root : t
val of_labels : t -> t
val of_string_exn : string -> t
val of_string : string -> (t, string) result
val to_string : Label.t list -> string
val pp : Format.formatter -> Label.t list -> unit
val labels : t -> Label.t list
val reversed : t -> Label.t list
val label_count : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val is_strictly_under : ancestor:t -> t -> bool
val is_under : ancestor:t -> t -> bool
val parent : 'a list -> 'a list option
val child : Label.t -> t -> t
val leftmost : 'a list -> 'a option
val is_wildcard : String.t list -> bool
val wildcard_parent : 'a list -> 'a list option
val suffix : t -> int -> t
val codes : Label.Coder.t -> t -> int list
val of_codes : Label.Coder.t -> int list -> t
val to_wire : t -> int list
val of_wire : int list -> (t, string) result
