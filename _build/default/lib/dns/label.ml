(* DNS labels and their integer coding.

   A label is one dot-separated component of a domain name, at most 63
   octets (RFC 1035 §2.3.4). Verification maps labels to integers
   (paper §6.3): any injective map works because the engine only ever
   compares labels for equality and order. The [Coder] below interns
   labels to dense codes, shared between the heap encoder (which lays
   node names out as code arrays) and the specification (which constrains
   symbolic qname label variables against the same codes). *)

type t = string

let max_length = 63

(* The wildcard label. Interned first so its code is the reserved
   smallest value, which keeps wildcard nodes leftmost in sibling
   ordering. *)
let wildcard = "*"
let is_wildcard l = String.equal l wildcard

let valid_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

let validate (s : string) : (t, string) result =
  if String.length s = 0 then Error "empty label"
  else if String.length s > max_length then Error ("label too long: " ^ s)
  else if String.equal s wildcard then Ok s
  else if String.for_all valid_char (String.lowercase_ascii s) then
    Ok (String.lowercase_ascii s)
  else Error ("invalid label: " ^ s)

let of_string_exn s =
  match validate s with Ok l -> l | Error m -> invalid_arg m

let to_string (l : t) : string = l
let equal (a : t) (b : t) = String.equal a b
let compare (a : t) (b : t) = String.compare a b
let pp fmt l = Format.pp_print_string fmt l

(* ------------------------------------------------------------------ *)
(* Integer coding                                                     *)
(* ------------------------------------------------------------------ *)

module Coder = struct
  type label = t

  type t = {
    by_label : (label, int) Hashtbl.t;
    by_code : (int, label) Hashtbl.t;
    mutable next : int;
  }

  (* Code 0 is reserved as "no label" (padding in fixed arrays);
     code 1 is the wildcard. Real labels start at 2. *)
  let padding_code = 0
  let wildcard_code = 1

  let create () =
    let t =
      { by_label = Hashtbl.create 64; by_code = Hashtbl.create 64; next = 2 }
    in
    Hashtbl.replace t.by_label wildcard wildcard_code;
    Hashtbl.replace t.by_code wildcard_code wildcard;
    t

  let code t (l : label) : int =
    match Hashtbl.find_opt t.by_label l with
    | Some c -> c
    | None ->
        let c = t.next in
        t.next <- c + 1;
        Hashtbl.replace t.by_label l c;
        Hashtbl.replace t.by_code c l;
        c

  let label_of_code t (c : int) : label option = Hashtbl.find_opt t.by_code c

  (* For counterexample concretization: any integer the solver invents
     that is not an interned code becomes a fresh synthetic label, so a
     model always maps back to a concrete query. *)
  let label_of_code_or_fresh t (c : int) : label =
    match label_of_code t c with
    | Some l -> l
    | None ->
        let l = Printf.sprintf "x%d" c in
        Hashtbl.replace t.by_label l c;
        Hashtbl.replace t.by_code c l;
        l

  let max_code t = t.next - 1
end
