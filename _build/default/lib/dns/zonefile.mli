(* A minimal master-file style textual zone format, for the CLI, the
   examples, and golden tests.

   Line format (whitespace-separated):
     <owner> <ttl> <TYPE> <rdata...>
   Comments start with ';'. The first line must be a $ORIGIN directive:
     $ORIGIN example.com.
   Owner names may be written relative to the origin or fully qualified
   with a trailing dot. '@' denotes the origin. *)

val render : Zone.t -> string
exception Parse_error of int * string
val parse_error : int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val parse : string -> (Zone.t, string) result
