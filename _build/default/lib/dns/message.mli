(* DNS query and response messages, restricted to what authoritative
   resolution computes (§2): rcode, AA flag, and the three record
   sections. *)

type query = { qname : Name.t; qtype : Rr.rtype; }
val query : Name.t -> Rr.rtype -> query
val pp_query : Format.formatter -> query -> unit
type rcode = NoError | NXDomain | Refused | ServFail
val rcode_code : rcode -> int
val rcode_of_code : int -> rcode option
val rcode_to_string : rcode -> string
val pp_rcode : Format.formatter -> rcode -> unit
type response = {
  rcode : rcode;
  aa : bool;
  answer : Rr.t list;
  authority : Rr.t list;
  additional : Rr.t list;
}
val response :
  ?aa:bool ->
  ?answer:Rr.t list ->
  ?authority:Rr.t list -> ?additional:Rr.t list -> rcode -> response
val equal_section : Rr.t list -> Rr.t list -> bool
val equal_response : response -> response -> bool
val pp_section : Format.formatter -> string * Rr.t list -> unit
val pp_response : Format.formatter -> response -> unit
val response_to_string : response -> string
