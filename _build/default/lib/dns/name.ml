(* Domain names.

   Stored in presentation order (["www"; "example"; "com"]). The tree /
   verification side works with the *reversed* order (com first), which
   is how the paper encodes names as integer lists (Figure 10), and the
   wire form is the raw length-prefixed byte representation that
   compareRaw iterates over (Figure 4). *)

type t = Label.t list (* presentation order; [] is the root *)

let root : t = []
let of_labels labels : t = labels

let of_string_exn (s : string) : t =
  match s with
  | "" | "." -> []
  | s ->
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '.' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      List.map Label.of_string_exn (String.split_on_char '.' s)

let of_string (s : string) : (t, string) result =
  match of_string_exn s with
  | n -> Ok n
  | exception Invalid_argument m -> Error m

let to_string = function
  | [] -> "."
  | labels -> String.concat "." (List.map Label.to_string labels)

let pp fmt n = Format.pp_print_string fmt (to_string n)
let labels (n : t) : Label.t list = n
let reversed (n : t) : Label.t list = List.rev n
let label_count (n : t) = List.length n
let equal (a : t) (b : t) = List.equal Label.equal a b

(* Canonical DNS ordering: compare label-by-label from the rightmost
   (top) label. *)
let compare (a : t) (b : t) =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: a, y :: b ->
        let c = Label.compare x y in
        if c <> 0 then c else go a b
  in
  go (reversed a) (reversed b)

(* "www.example.com" is under "example.com" (strictly). *)
let is_strictly_under ~(ancestor : t) (n : t) =
  let ra = reversed ancestor and rn = reversed n in
  let rec prefix p l =
    match (p, l) with
    | [], _ :: _ -> true
    | [], [] -> false
    | _, [] -> false
    | x :: p, y :: l -> Label.equal x y && prefix p l
  in
  prefix ra rn

let is_under ~(ancestor : t) (n : t) =
  equal ancestor n || is_strictly_under ~ancestor n

(* The parent of a name (drop the leftmost label). *)
let parent = function [] -> None | _ :: rest -> Some rest

(* Prepend a label: child "www" of "example.com". *)
let child (l : Label.t) (n : t) : t = l :: n

let leftmost = function [] -> None | l :: _ -> Some l
let is_wildcard n = match leftmost n with Some l -> Label.is_wildcard l | None -> false

(* Replace the wildcard owner's leftmost label(s) by the query name —
   i.e. the name synthesized for a wildcard match is the query name
   itself (RFC 1034 §4.3.3). *)
let wildcard_parent = parent

(* The suffix of [n] of length [k] (topmost k labels), presentation
   order. *)
let suffix (n : t) k =
  let len = label_count n in
  if k >= len then n
  else
    let rec drop i = function
      | l when i = 0 -> l
      | _ :: rest -> drop (i - 1) rest
      | [] -> []
    in
    drop (len - k) n

(* ------------------------------------------------------------------ *)
(* Integer coding (§6.3): a name as reversed label codes.             *)
(* ------------------------------------------------------------------ *)

let codes (coder : Label.Coder.t) (n : t) : int list =
  List.map (Label.Coder.code coder) (reversed n)

let of_codes (coder : Label.Coder.t) (cs : int list) : t =
  List.rev_map (Label.Coder.label_of_code_or_fresh coder) cs

(* ------------------------------------------------------------------ *)
(* Raw wire bytes (Figure 4's representation): length-prefixed labels,
   terminated by a zero octet, e.g. "\003www\007example\003com\000".  *)
(* ------------------------------------------------------------------ *)

let to_wire (n : t) : int list =
  List.concat_map
    (fun l ->
      let s = Label.to_string l in
      String.length s :: List.map Char.code (List.init (String.length s) (String.get s)))
    n
  @ [ 0 ]

let of_wire (bytes : int list) : (t, string) result =
  let buf = Array.of_list bytes in
  let n = Array.length buf in
  let rec go i acc =
    if i >= n then Error "wire name: missing terminator"
    else
      let len = buf.(i) in
      if len = 0 then Ok (List.rev acc)
      else if i + len >= n then Error "wire name: truncated label"
      else
        let chars = Array.to_list (Array.sub buf (i + 1) len) in
        let s = String.init len (fun k -> Char.chr (List.nth chars k)) in
        match Label.validate s with
        | Ok l -> go (i + 1 + len) (l :: acc)
        | Error m -> Error m
  in
  go 0 []
