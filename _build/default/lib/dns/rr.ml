(* Resource records: types, rdata, and the record itself (§2).

   Rdata is modelled at the granularity the authoritative engine needs:
   addresses are opaque integers (the engine never interprets them), and
   name-valued rdata (NS / CNAME / MX exchange / SRV target) carries a
   real domain name because resolution logic chases those. *)

type rtype = A | AAAA | NS | CNAME | SOA | MX | TXT | PTR | SRV

let all_rtypes = [ A; AAAA; NS; CNAME; SOA; MX; TXT; PTR; SRV ]

(* Stable numeric codes, used for qtype symbols in verification. These
   match the real DNS type codes for familiarity. *)
let rtype_code = function
  | A -> 1
  | NS -> 2
  | CNAME -> 5
  | SOA -> 6
  | PTR -> 12
  | MX -> 15
  | TXT -> 16
  | AAAA -> 28
  | SRV -> 33

let rtype_of_code = function
  | 1 -> Some A
  | 2 -> Some NS
  | 5 -> Some CNAME
  | 6 -> Some SOA
  | 12 -> Some PTR
  | 15 -> Some MX
  | 16 -> Some TXT
  | 28 -> Some AAAA
  | 33 -> Some SRV
  | _ -> None

let rtype_to_string = function
  | A -> "A"
  | AAAA -> "AAAA"
  | NS -> "NS"
  | CNAME -> "CNAME"
  | SOA -> "SOA"
  | MX -> "MX"
  | TXT -> "TXT"
  | PTR -> "PTR"
  | SRV -> "SRV"

let rtype_of_string = function
  | "A" -> Some A
  | "AAAA" -> Some AAAA
  | "NS" -> Some NS
  | "CNAME" -> Some CNAME
  | "SOA" -> Some SOA
  | "MX" -> Some MX
  | "TXT" -> Some TXT
  | "PTR" -> Some PTR
  | "SRV" -> Some SRV
  | _ -> None

let pp_rtype fmt t = Format.pp_print_string fmt (rtype_to_string t)
let equal_rtype (a : rtype) (b : rtype) = a = b

type soa = {
  mname : Name.t; (* primary nameserver *)
  rname : Name.t; (* responsible mailbox *)
  serial : int;
  refresh : int;
  retry : int;
  expire : int;
  minimum : int;
}

type rdata =
  | Addr of int (* A / AAAA: opaque address id *)
  | Host of Name.t (* NS / CNAME / PTR target *)
  | Mx of int * Name.t (* preference, exchange *)
  | Srv of int * int * int * Name.t (* priority, weight, port, target *)
  | Text of string
  | Soa_data of soa

type t = { rname : Name.t; rtype : rtype; ttl : int; rdata : rdata }

let make ?(ttl = 300) rname rtype rdata = { rname; rtype; ttl; rdata }

(* The rdata shape allowed for each record type. *)
let rdata_matches_rtype rtype rdata =
  match (rtype, rdata) with
  | (A | AAAA), Addr _ -> true
  | (NS | CNAME | PTR), Host _ -> true
  | MX, Mx _ -> true
  | SRV, Srv _ -> true
  | TXT, Text _ -> true
  | SOA, Soa_data _ -> true
  | _ -> false

(* The target name embedded in rdata, if any — what glue lookup and
   CNAME chasing chase. *)
let rdata_target = function
  | Host n -> Some n
  | Mx (_, n) -> Some n
  | Srv (_, _, _, n) -> Some n
  | Addr _ | Text _ | Soa_data _ -> None

let equal_rdata (a : rdata) (b : rdata) =
  match (a, b) with
  | Addr x, Addr y -> x = y
  | Host x, Host y -> Name.equal x y
  | Mx (p, x), Mx (q, y) -> p = q && Name.equal x y
  | Srv (a1, b1, c1, x), Srv (a2, b2, c2, y) ->
      a1 = a2 && b1 = b2 && c1 = c2 && Name.equal x y
  | Text x, Text y -> String.equal x y
  | Soa_data x, Soa_data y ->
      Name.equal x.mname y.mname && Name.equal x.rname y.rname
      && x.serial = y.serial && x.refresh = y.refresh && x.retry = y.retry
      && x.expire = y.expire && x.minimum = y.minimum
  | (Addr _ | Host _ | Mx _ | Srv _ | Text _ | Soa_data _), _ -> false

(* TTL is irrelevant to resolution correctness; record equality used by
   the differential tests ignores it. *)
let equal (a : t) (b : t) =
  Name.equal a.rname b.rname && equal_rtype a.rtype b.rtype
  && equal_rdata a.rdata b.rdata

let pp_rdata fmt = function
  | Addr a -> Format.fprintf fmt "addr#%d" a
  | Host n -> Name.pp fmt n
  | Mx (p, n) -> Format.fprintf fmt "%d %a" p Name.pp n
  | Srv (p, w, port, n) -> Format.fprintf fmt "%d %d %d %a" p w port Name.pp n
  | Text s -> Format.fprintf fmt "%S" s
  | Soa_data s ->
      Format.fprintf fmt "%a %a %d %d %d %d %d" Name.pp s.mname Name.pp s.rname
        s.serial s.refresh s.retry s.expire s.minimum

let pp fmt (r : t) =
  Format.fprintf fmt "%a %d %a %a" Name.pp r.rname r.ttl pp_rtype r.rtype
    pp_rdata r.rdata

let to_string r = Format.asprintf "%a" pp r

(* Convenience constructors. *)
let a ?ttl rname addr = make ?ttl rname A (Addr addr)
let aaaa ?ttl rname addr = make ?ttl rname AAAA (Addr addr)
let ns ?ttl rname target = make ?ttl rname NS (Host target)
let cname ?ttl rname target = make ?ttl rname CNAME (Host target)
let mx ?ttl rname pref target = make ?ttl rname MX (Mx (pref, target))
let txt ?ttl rname text = make ?ttl rname TXT (Text text)

let soa ?ttl rname ~mname ~serial =
  make ?ttl rname SOA
    (Soa_data
       {
         mname;
         rname = Name.of_string_exn "hostmaster.invalid";
         serial;
         refresh = 3600;
         retry = 600;
         expire = 86400;
         minimum = 300;
       })
