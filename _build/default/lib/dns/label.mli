(* DNS labels and their integer coding.

   A label is one dot-separated component of a domain name, at most 63
   octets (RFC 1035 §2.3.4). Verification maps labels to integers
   (paper §6.3): any injective map works because the engine only ever
   compares labels for equality and order. The [Coder] below interns
   labels to dense codes, shared between the heap encoder (which lays
   node names out as code arrays) and the specification (which constrains
   symbolic qname label variables against the same codes). *)

type t = string
val max_length : int
val wildcard : string
val is_wildcard : String.t -> bool
val valid_char : char -> bool
val validate : string -> (t, string) result
val of_string_exn : string -> t
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> string -> unit
module Coder :
  sig
    type label = t
    type t = {
      by_label : (label, int) Hashtbl.t;
      by_code : (int, label) Hashtbl.t;
      mutable next : int;
    }
    val padding_code : int
    val wildcard_code : int
    val create : unit -> t
    val code : t -> label -> int
    val label_of_code : t -> int -> label option
    val label_of_code_or_fresh : t -> int -> label
    val max_code : t -> int
  end
