(* Zone configurations: an origin plus its resource records, with the
   structural validation the control plane performs before handing a
   zone to the engine (§6.5). *)

type t = { origin : Name.t; records : Rr.t list; }
val make : Name.t -> Rr.t list -> t
val origin : t -> Name.t
val records : t -> Rr.t list
val record_count : t -> int
val records_at : t -> Name.t -> Rr.t list
val records_at_typed : t -> Name.t -> Rr.rtype -> Rr.t list
val owner_names : t -> Name.t list
val soa_record : t -> Rr.t option
val is_delegation : t -> Name.t -> bool
val covering_delegation : t -> Name.t -> Name.t option
val node_exists : t -> Name.t -> bool
type error =
    No_soa
  | Out_of_zone of Rr.t
  | Rdata_shape of Rr.t
  | Cname_conflict of Name.t
  | Wildcard_position of Rr.t
val pp_error : Format.formatter -> error -> unit
val validate : t -> error list
val is_valid : t -> bool
val pp : Format.formatter -> t -> unit
