(* Random zone-configuration generation (§6.5, §9).

   The paper's control-plane scripts generate tens of thousands of zones,
   favouring complex names (wildcards at various positions) and
   intertwined records (sub-domains, NS referrals, glue, CNAME chains),
   so the concrete domain tree exercises diverse matching scenarios.
   This module reproduces that distribution with an explicit seeded RNG
   so every experiment is replayable. *)

type config = {
  max_depth : int;
  max_children : int;
  wildcard_prob : float;
  delegation_prob : float;
  cname_prob : float;
  mx_prob : float;
  txt_prob : float;
  max_rrs_per_node : int;
}
val default_config : config
val label_pool : string array
val pick_label : Random.State.t -> string
type gen_state = {
  rng : Random.State.t;
  cfg : config;
  mutable records : Rr.t list;
  mutable next_addr : int;
  mutable host_names : Name.t list;
  mutable owners : Name.t list;
}
val fresh_addr : gen_state -> int
val add : gen_state -> Rr.t -> unit
val taken : gen_state -> Name.t -> bool
val flip : gen_state -> float -> bool
val populate_node : gen_state -> Name.t -> allow_cname:bool -> unit
val delegate : gen_state -> Name.t -> unit
val gen_subtree : gen_state -> Name.t -> int -> unit
val generate : ?config:config -> seed:int -> Name.t -> Zone.t
val generate_many :
  ?config:config -> seed:int -> count:int -> Name.t -> Zone.t list
val random_query : rng:Random.State.t -> Zone.t -> Message.query
