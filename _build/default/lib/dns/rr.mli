(* Resource records: types, rdata, and the record itself (§2).

   Rdata is modelled at the granularity the authoritative engine needs:
   addresses are opaque integers (the engine never interprets them), and
   name-valued rdata (NS / CNAME / MX exchange / SRV target) carries a
   real domain name because resolution logic chases those. *)

type rtype = A | AAAA | NS | CNAME | SOA | MX | TXT | PTR | SRV
val all_rtypes : rtype list
val rtype_code : rtype -> int
val rtype_of_code : int -> rtype option
val rtype_to_string : rtype -> string
val rtype_of_string : string -> rtype option
val pp_rtype : Format.formatter -> rtype -> unit
val equal_rtype : rtype -> rtype -> bool
type soa = {
  mname : Name.t;
  rname : Name.t;
  serial : int;
  refresh : int;
  retry : int;
  expire : int;
  minimum : int;
}
type rdata =
    Addr of int
  | Host of Name.t
  | Mx of int * Name.t
  | Srv of int * int * int * Name.t
  | Text of string
  | Soa_data of soa
type t = { rname : Name.t; rtype : rtype; ttl : int; rdata : rdata; }
val make : ?ttl:int -> Name.t -> rtype -> rdata -> t
val rdata_matches_rtype : rtype -> rdata -> bool
val rdata_target : rdata -> Name.t option
val equal_rdata : rdata -> rdata -> bool
val equal : t -> t -> bool
val pp_rdata : Format.formatter -> rdata -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val a : ?ttl:int -> Name.t -> int -> t
val aaaa : ?ttl:int -> Name.t -> int -> t
val ns : ?ttl:int -> Name.t -> Name.t -> t
val cname : ?ttl:int -> Name.t -> Name.t -> t
val mx : ?ttl:int -> Name.t -> int -> Name.t -> t
val txt : ?ttl:int -> Name.t -> string -> t
val soa : ?ttl:int -> Name.t -> mname:Name.t -> serial:int -> t
