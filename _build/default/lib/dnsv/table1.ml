(* Experiment: Table 1 (§6.4) — the execution paths of TreeSearch
   walking the Figure-11 example domain tree.

   We summarize TreeSearch with a symbolic qname constrained under the
   zone origin and report, for each input-effect pair: the path
   condition, a satisfying example qname (like the paper's table), and
   the recorded effect (match kind and result node). The paper lists
   exactly 14 paths (P0–P13). *)

module Term = Smt.Term
module Solver = Smt.Solver
module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Layout = Dnstree.Layout
module Encode = Dnstree.Encode
module Tree = Dnstree.Tree
module Sval = Symex.Sval
module Exec = Symex.Exec
module Specsym = Refine.Specsym

type row = {
  path_id : int;
  condition : string;
  example_qname : string;
  kind : string; (* EXACT / CLOSEST / DELEGATION *)
  result_node : string;
}

type result = {
  rows : row list;
  zone : Zone.t;
  elapsed : float;
  solver_calls : int;
}

let kind_name k =
  if k = Layout.k_exact then "EXACT"
  else if k = Layout.k_delegation then "DELEGATION"
  else "CLOSEST"

let run ?(zone = Spec.Fixtures.figure11_zone) () : result =
  let t0 = Unix.gettimeofday () in
  Solver.reset_stats ();
  let enc = Encode.encode (Tree.build zone) in
  let prog = Engine.Versions.compiled (Engine.Versions.fixed Engine.Versions.v3_0) in
  let ctx = Exec.create prog in
  let tenv = prog.Minir.Instr.tenv in
  let mem0 = Sval.memory_of_concrete enc.Encode.memory in
  let mem0, stack_ptr =
    Sval.alloc mem0 (Sval.scell_default tenv (Minir.Ty.Struct "NodeStack"))
  in
  let mem0, res_ptr =
    Sval.alloc mem0 (Sval.scell_default tenv (Minir.Ty.Struct "SearchResult"))
  in
  let mem0, qname_ptr =
    Sval.alloc mem0
      (Sval.CArray
         (Array.init Layout.max_labels (fun j ->
              Sval.CInt (Specsym.qsym_label j))))
  in
  let coder = enc.Encode.interner.Layout.coder in
  let pc =
    Specsym.under coder (Zone.origin zone)
    :: Specsym.domain_constraints ~max_labels:Layout.max_labels
  in
  let args =
    [
      Sval.SPtr enc.Encode.root;
      Sval.SPtr stack_ptr;
      Sval.SPtr res_ptr;
      Sval.SPtr qname_ptr;
      Sval.SInt Specsym.qsym_len;
      Sval.SBool Term.false_;
    ]
  in
  let results = Exec.run ctx ~memory:mem0 ~pc ~fn:"treeSearch" ~args in
  let node_name_of_block b =
    match
      List.find_opt (fun (_, blk) -> blk = b) enc.Encode.node_blocks
    with
    | Some (name, _) -> Name.to_string name
    | None -> Printf.sprintf "block#%d" b
  in
  let rows =
    List.mapi
      (fun idx ((path : Exec.path), outcome) ->
        (match outcome with
        | Exec.Returned None -> ()
        | Exec.Returned (Some _) -> invalid_arg "treeSearch returned a value"
        | Exec.Panicked m -> invalid_arg ("treeSearch panicked: " ^ m));
        let example, kind, node =
          match Solver.check path.Exec.pc with
          | Solver.Sat m -> (
              let q = Specsym.query_of_model coder m ~qtype:Rr.A in
              match Sval.load_cell path.Exec.mem res_ptr with
              | Sval.CStruct [| node_cell; kind_cell |] ->
                  let kind =
                    match kind_cell with
                    | Sval.CInt (Term.Int_const k) -> kind_name k
                    | _ -> "?"
                  in
                  let node =
                    match node_cell with
                    | Sval.CPtr p -> node_name_of_block p.Minir.Value.block
                    | Sval.CNull -> "nil"
                    | _ -> "?"
                  in
                  (Name.to_string q.Dns.Message.qname, kind, node)
              | _ -> ("?", "?", "?"))
          | _ -> ("<unsat>", "?", "?")
        in
        (* Render the interesting conjuncts (skip the domain bounds). *)
        let condition =
          path.Exec.pc
          |> List.filter (fun t -> not (List.memq t pc))
          |> List.rev_map Term.to_string
          |> String.concat " && "
        in
        {
          path_id = idx;
          condition;
          example_qname = example;
          kind;
          result_node = node;
        })
      results
  in
  {
    rows;
    zone;
    elapsed = Unix.gettimeofday () -. t0;
    solver_calls = ctx.Exec.solver_calls;
  }

let print (r : result) =
  Printf.printf
    "Table 1: execution paths of TreeSearch on the Figure-11 domain tree\n";
  Printf.printf "(zone %s, %d paths, %d solver calls, %.3fs)\n\n"
    (Name.to_string (Zone.origin r.zone))
    (List.length r.rows) r.solver_calls r.elapsed;
  Printf.printf "%-5s %-28s %-12s %-22s\n" "Path" "Example qname" "Kind"
    "Result node";
  List.iter
    (fun row ->
      Printf.printf "P%-4d %-28s %-12s %-22s\n" row.path_id row.example_qname
        row.kind row.result_node)
    r.rows;
  Printf.printf "\nPath conditions:\n";
  List.iter
    (fun row ->
      Printf.printf "P%-3d %s\n" row.path_id
        (if row.condition = "" then "(true)" else row.condition))
    r.rows
