(* Experiment: Table 3 (§7) — cost of verifying one version of the DNS
   authoritative engine and porting the verification to a newer one.

   Paper's shape: the implementation is O(2000) lines with O(200)
   changing between v2.0 and v3.0 (~10:1); dependency specifications,
   interface configuration and the top-level specification are each one
   to two orders of magnitude smaller than the implementation, and their
   deltas are near zero; the safety property is O(1) (panic blocks are
   unreachable) and never changes. We measure the same quantities on
   our artifacts. *)

module Builder = Engine.Builder
module Versions = Engine.Versions
type row = { artifact : string; v2_size : string; delta_v2_v3 : string; }
type result = { rows : row list; impl_sizes : (string * int) list; }
val run : unit -> result
val print : result -> unit
