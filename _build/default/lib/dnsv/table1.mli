(* Experiment: Table 1 (§6.4) — the execution paths of TreeSearch
   walking the Figure-11 example domain tree.

   We summarize TreeSearch with a symbolic qname constrained under the
   zone origin and report, for each input-effect pair: the path
   condition, a satisfying example qname (like the paper's table), and
   the recorded effect (match kind and result node). The paper lists
   exactly 14 paths (P0–P13). *)

module Term = Smt.Term
module Solver = Smt.Solver
module Name = Dns.Name
module Rr = Dns.Rr
module Zone = Dns.Zone
module Layout = Dnstree.Layout
module Encode = Dnstree.Encode
module Tree = Dnstree.Tree
module Sval = Symex.Sval
module Exec = Symex.Exec
module Specsym = Refine.Specsym
type row = {
  path_id : int;
  condition : string;
  example_qname : string;
  kind : string;
  result_node : string;
}
type result = {
  rows : row list;
  zone : Zone.t;
  elapsed : float;
  solver_calls : int;
}
val kind_name : int -> string
val run : ?zone:Spec.Fixtures.Zone.t -> unit -> result
val print : result -> unit
