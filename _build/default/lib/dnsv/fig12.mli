(* Experiment: Figure 12 (§7) — per-layer symbolic execution and
   summarization time.

   The paper reports that DNS-V finishes each layer in under a minute.
   We verify v2.0 end-to-end on the reference zone and report, per
   layer: manual layers with their specification-equivalence check
   time, summarized layers with their total summarization time and the
   number of summary cases, and the top layer (Resolve) with the
   whole-engine refinement time. *)

module Rr = Dns.Rr
module Check = Refine.Check
module Layers = Refine.Layers
module Versions = Engine.Versions
module Builder = Engine.Builder
type row = {
  layer : string;
  kind : string;
  seconds : float;
  detail : string;
}
type result = { rows : row list; total : float; }
val run :
  ?cfg:Engine.Builder.config ->
  ?zone:Spec.Fixtures.Zone.t -> ?qtypes:Check.Rr.rtype list -> unit -> result
val print : result -> unit
