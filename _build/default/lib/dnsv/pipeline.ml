(* The DNS-V pipeline facade (Figure 6): end-to-end verification of one
   engine version — dependency layers against their manual
   specifications, then the whole engine (with automatic summaries at
   the resolution layers) against the top-level specification, for a
   set of query types over one or many zone configurations. *)

module Rr = Dns.Rr
module Zone = Dns.Zone
module Name = Dns.Name
module Check = Refine.Check
module Layers = Refine.Layers
module Versions = Engine.Versions
module Builder = Engine.Builder

(* The query types exercised by full verification; PTR/SRV behave like
   the others and are included for completeness. *)
let all_qtypes = [ Rr.A; Rr.AAAA; Rr.NS; Rr.CNAME; Rr.SOA; Rr.MX; Rr.TXT ]

type verdict = {
  version : string;
  zone_origin : string;
  layer_reports : Layers.layer_report list;
  reports : Check.report list; (* one per query type *)
  elapsed : float;
}

let clean (v : verdict) =
  List.for_all Layers.layer_ok v.layer_reports
  && List.for_all Check.ok v.reports

let issues (v : verdict) =
  List.concat_map
    (fun (r : Check.report) ->
      List.map
        (fun (m : Check.mismatch) ->
          Printf.sprintf "[%s] functional mismatch on %s: %s"
            (Rr.rtype_to_string r.Check.qtype)
            (Format.asprintf "%a" Dns.Message.pp_query m.Check.query)
            m.Check.detail)
        r.Check.mismatches
      @ List.map
          (fun (p : Check.panic_report) ->
            Printf.sprintf "[%s] runtime error on %s: %s"
              (Rr.rtype_to_string r.Check.qtype)
              (Format.asprintf "%a" Dns.Message.pp_query p.Check.panic_query)
              p.Check.reason)
          r.Check.panics)
    v.reports

(* Verify [cfg] on [zone] for [qtypes]. *)
let verify ?(qtypes = all_qtypes) ?(mode = Check.With_summaries)
    ?(check_layers = true) (cfg : Builder.config) (zone : Zone.t) : verdict =
  let t0 = Unix.gettimeofday () in
  let prog = Versions.compiled cfg in
  let layer_reports = if check_layers then Layers.check_all ~zone prog else [] in
  let reports =
    List.map (fun qtype -> Check.check_version ~mode cfg zone ~qtype) qtypes
  in
  {
    version = cfg.Builder.version;
    zone_origin = Name.to_string (Zone.origin zone);
    layer_reports;
    reports;
    elapsed = Unix.gettimeofday () -. t0;
  }

(* Verify over a batch of generated zone configurations (§6.5: each run
   proves correctness for one concrete zone snapshot). Stops at the
   first zone exposing an issue, or verifies them all. *)
type batch_outcome =
  | All_clean of int (* zones verified *)
  | Failed of { zone_index : int; verdict : verdict }

let verify_batch ?(qtypes = [ Rr.A; Rr.MX ]) ?(count = 10) ?(seed = 0)
    (cfg : Builder.config) (origin : Name.t) : batch_outcome =
  let zones = Dns.Zonegen.generate_many ~seed ~count origin in
  let rec go i = function
    | [] -> All_clean count
    | zone :: rest ->
        let v = verify ~qtypes ~check_layers:(i = 0) cfg zone in
        if clean v then go (i + 1) rest
        else Failed { zone_index = i; verdict = v }
  in
  go 0 zones

let pp_verdict fmt (v : verdict) =
  Format.fprintf fmt "@[<v>engine %s on zone %s: %s (%.2fs)@," v.version
    v.zone_origin
    (if clean v then "VERIFIED" else "ISSUES FOUND")
    v.elapsed;
  List.iter
    (fun (r : Layers.layer_report) ->
      Format.fprintf fmt "  layer %-18s %s@," r.Layers.layer
        (if Layers.layer_ok r then "ok" else String.concat "; " r.Layers.mismatches))
    v.layer_reports;
  List.iter (fun i -> Format.fprintf fmt "  %s@," i) (issues v);
  Format.fprintf fmt "@]"

let verdict_to_string v = Format.asprintf "%a" pp_verdict v
