(* Experiment: Table 2 (§7) — the production issues found and prevented
   by formal verification.

   For each of the nine seeded bugs we verify the affected engine
   version against the top-level specification (on the bug's witness
   zone and query type) and report whether DNS-V caught it, the kind of
   evidence (functional-correctness mismatch vs. reachable panic), and
   a concretized counterexample query. The corrected version of every
   engine must verify clean on the same inputs. *)

module Rr = Dns.Rr
module Message = Dns.Message
module Check = Refine.Check
module Fixtures = Spec.Fixtures
module Versions = Engine.Versions
module Bugs = Engine.Bugs

type evidence = Mismatch of string | Runtime_error of string | Not_caught

type row = {
  index : int;
  version : string;
  classification : string;
  description : string;
  caught : bool;
  evidence : evidence;
  witness : string; (* concrete counterexample query *)
  fixed_clean : bool;
  elapsed : float;
}

type result = { rows : row list; elapsed : float }

let config_for_bug = function
  | 1 | 2 | 3 -> Versions.v1_0
  | 4 | 5 | 6 | 7 -> Versions.v2_0
  | 8 -> Versions.v3_0
  | 9 -> Versions.dev
  | i -> invalid_arg (Printf.sprintf "no bug %d" i)

let run () : result =
  let t0 = Unix.gettimeofday () in
  let rows =
    List.map
      (fun (info : Bugs.info) ->
        let w = Fixtures.witness info.Bugs.index in
        let cfg = config_for_bug info.Bugs.index in
        let qtype = w.Fixtures.query.Message.qtype in
        let t1 = Unix.gettimeofday () in
        let report = Check.check_version cfg w.Fixtures.zone ~qtype in
        let evidence, witness =
          match (report.Check.panics, report.Check.mismatches) with
          | p :: _, _ ->
              ( Runtime_error p.Check.reason,
                Format.asprintf "%a" Message.pp_query p.Check.panic_query )
          | [], m :: _ ->
              ( Mismatch m.Check.detail,
                Format.asprintf "%a" Message.pp_query m.Check.query )
          | [], [] -> (Not_caught, "-")
        in
        let fixed_report =
          Check.check_version (Versions.fixed cfg) w.Fixtures.zone ~qtype
        in
        {
          index = info.Bugs.index;
          version = info.Bugs.version;
          classification = info.Bugs.classification;
          description = info.Bugs.description;
          caught = evidence <> Not_caught;
          evidence;
          witness;
          fixed_clean = Check.ok fixed_report;
          elapsed = Unix.gettimeofday () -. t1;
        })
      Bugs.table2
  in
  { rows; elapsed = Unix.gettimeofday () -. t0 }

let all_caught (r : result) =
  List.for_all (fun row -> row.caught && row.fixed_clean) r.rows

let print (r : result) =
  Printf.printf
    "Table 2: issues prevented from reaching production by formal \
     verification\n";
  Printf.printf "(total %.2fs; every bug also re-verified fixed)\n\n" r.elapsed;
  Printf.printf "%-3s %-8s %-20s %-7s %-7s %s\n" "#" "Version" "Classification"
    "Caught" "Fixed" "Witness query";
  List.iter
    (fun row ->
      Printf.printf "%-3d %-8s %-20s %-7s %-7s %s\n" row.index row.version
        row.classification
        (if row.caught then "yes" else "NO!")
        (if row.fixed_clean then "clean" else "DIRTY")
        row.witness)
    r.rows;
  Printf.printf "\nDetails:\n";
  List.iter
    (fun row ->
      let ev =
        match row.evidence with
        | Mismatch d -> "mismatch: " ^ d
        | Runtime_error m -> "runtime error: " ^ m
        | Not_caught -> "NOT CAUGHT"
      in
      Printf.printf "%d. %s — %s (%.2fs)\n" row.index row.description ev
        row.elapsed)
    r.rows
