(* Size accounting for the Table-3 porting-cost experiment.

   The implementation is measured directly on the Golite AST (statement
   counts per function); version deltas are computed by comparing
   function bodies across two versions. Specification and harness sizes
   are read from the OCaml sources when the repository is available at
   run time, with self-reported fallbacks otherwise. *)

module Ast = Golite.Ast
val stmt_size : Ast.stmt -> int
val stmts_size : Ast.stmt list -> int
val func_size : Ast.func -> int
val program_size : Ast.program -> int
val func_sizes : Ast.program -> (string * int) list
val changed_functions : Ast.program -> Ast.program -> (string * int) list
val changed_size : Ast.program -> Ast.program -> int
val source_lines : ?fallback:int -> string -> int option
