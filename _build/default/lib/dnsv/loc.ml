(* Size accounting for the Table-3 porting-cost experiment.

   The implementation is measured directly on the Golite AST (statement
   counts per function); version deltas are computed by comparing
   function bodies across two versions. Specification and harness sizes
   are read from the OCaml sources when the repository is available at
   run time, with self-reported fallbacks otherwise. *)

module Ast = Golite.Ast

let rec stmt_size (s : Ast.stmt) : int =
  match s with
  | Ast.Declare _ | Ast.Assign _ | Ast.Return _ | Ast.Expr_stmt _ | Ast.Break
  | Ast.Continue | Ast.Panic _ ->
      1
  | Ast.If (_, a, b) -> 1 + stmts_size a + stmts_size b
  | Ast.While (_, body) -> 1 + stmts_size body

and stmts_size body = List.fold_left (fun acc s -> acc + stmt_size s) 0 body

let func_size (f : Ast.func) = 1 + stmts_size f.Ast.body

let program_size (p : Ast.program) =
  List.fold_left (fun acc f -> acc + func_size f) 0 p.Ast.funcs
  + List.fold_left
      (fun acc (s : Ast.struct_def) -> acc + 1 + List.length s.Ast.fields)
      0 p.Ast.structs

let func_sizes (p : Ast.program) =
  List.map (fun f -> (f.Ast.fn_name, func_size f)) p.Ast.funcs

(* Functions whose bodies differ between two versions, with the size of
   the new body (a coarse measure of the changed code, like a diff). *)
let changed_functions (old_p : Ast.program) (new_p : Ast.program) :
    (string * int) list =
  List.filter_map
    (fun (f : Ast.func) ->
      match
        List.find_opt (fun g -> g.Ast.fn_name = f.Ast.fn_name) old_p.Ast.funcs
      with
      | Some g when g.Ast.body = f.Ast.body -> None
      | Some _ -> Some (f.Ast.fn_name, func_size f)
      | None -> Some (f.Ast.fn_name, func_size f))
    new_p.Ast.funcs

let changed_size old_p new_p =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (changed_functions old_p new_p)

(* Count the non-empty, non-comment lines of an OCaml source file if the
   repository sources are reachable from the working directory. *)
let source_lines ?(fallback : int option) (relpath : string) : int option =
  let candidates = [ relpath; Filename.concat ".." relpath ] in
  let count file =
    let ic = open_in file in
    let n = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if
           line <> ""
           && not (String.length line >= 2 && String.sub line 0 2 = "(*")
         then incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  in
  match List.find_opt Sys.file_exists candidates with
  | Some file -> ( try Some (count file) with Sys_error _ -> fallback)
  | None -> fallback
