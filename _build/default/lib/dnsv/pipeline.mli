(* The DNS-V pipeline facade (Figure 6): end-to-end verification of one
   engine version — dependency layers against their manual
   specifications, then the whole engine (with automatic summaries at
   the resolution layers) against the top-level specification, for a
   set of query types over one or many zone configurations. *)

module Rr = Dns.Rr
module Zone = Dns.Zone
module Name = Dns.Name
module Check = Refine.Check
module Layers = Refine.Layers
module Versions = Engine.Versions
module Builder = Engine.Builder
val all_qtypes : Rr.rtype list
type verdict = {
  version : string;
  zone_origin : string;
  layer_reports : Layers.layer_report list;
  reports : Check.report list;
  elapsed : float;
}
val clean : verdict -> bool
val issues : verdict -> string list
val verify :
  ?qtypes:Check.Rr.rtype list ->
  ?mode:Check.mode ->
  ?check_layers:bool -> Builder.config -> Zone.t -> verdict
type batch_outcome =
    All_clean of int
  | Failed of { zone_index : int; verdict : verdict; }
val verify_batch :
  ?qtypes:Check.Rr.rtype list ->
  ?count:int -> ?seed:int -> Builder.config -> Name.t -> batch_outcome
val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_string : verdict -> string
