(* Experiment: Figure 12 (§7) — per-layer symbolic execution and
   summarization time.

   The paper reports that DNS-V finishes each layer in under a minute.
   We verify v2.0 end-to-end on the reference zone and report, per
   layer: manual layers with their specification-equivalence check
   time, summarized layers with their total summarization time and the
   number of summary cases, and the top layer (Resolve) with the
   whole-engine refinement time. *)

module Rr = Dns.Rr
module Check = Refine.Check
module Layers = Refine.Layers
module Versions = Engine.Versions
module Builder = Engine.Builder

type row = {
  layer : string;
  kind : string; (* "manual spec" / "summarized" / "top-level" *)
  seconds : float;
  detail : string;
}

type result = { rows : row list; total : float }

let run ?(cfg = Versions.fixed Versions.v2_0)
    ?(zone = Spec.Fixtures.reference_zone) ?(qtypes = [ Rr.A; Rr.MX; Rr.NS ])
    () : result =
  let t0 = Unix.gettimeofday () in
  let prog = Versions.compiled cfg in
  (* Manual layers: refinement against the hand-written specifications. *)
  let manual_rows =
    List.map
      (fun (r : Layers.layer_report) ->
        {
          layer = r.Layers.layer;
          kind = "manual spec";
          seconds = r.Layers.elapsed;
          detail =
            Printf.sprintf "%d code paths vs %d spec paths%s"
              r.Layers.code_paths r.Layers.spec_paths
              (if Layers.layer_ok r then "" else " [FAILED]");
        })
      (Layers.check_all ~zone prog)
  in
  (* The byte-level Name module (§6.3): compareRaw against compareAbs. *)
  let raw_row =
    let r = Refine.Raw_name.check () in
    {
      layer = "compareRaw";
      kind = "manual spec";
      seconds = r.Refine.Raw_name.elapsed;
      detail =
        Printf.sprintf "%d byte-level paths over %d structures%s"
          r.Refine.Raw_name.total_paths
          (List.length r.Refine.Raw_name.cases)
          (if Refine.Raw_name.ok r then "" else " [FAILED]");
    }
  in
  (* Summarized layers + the top level: whole-engine verification per
     query type, aggregating summarization times per layer. *)
  let reports = List.map (fun qtype -> Check.check_version cfg zone ~qtype) qtypes in
  let times : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let cases : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Check.report) ->
      List.iter
        (fun (fn, t) ->
          Hashtbl.replace times fn
            (Option.value ~default:0.0 (Hashtbl.find_opt times fn) +. t))
        r.Check.summary_times;
      List.iter
        (fun (fn, c) ->
          Hashtbl.replace cases fn
            (max c (Option.value ~default:0 (Hashtbl.find_opt cases fn))))
        r.Check.summary_cases)
    reports;
  let summarized_rows =
    List.filter_map
      (fun fn ->
        if fn = "resolve" then None
        else
          match Hashtbl.find_opt times fn with
          | Some t ->
              Some
                {
                  layer = fn;
                  kind = "summarized";
                  seconds = t;
                  detail =
                    Printf.sprintf "largest summary: %d input-effect pairs"
                      (Option.value ~default:0 (Hashtbl.find_opt cases fn));
                }
          | None -> None)
      Builder.summarized_layers
  in
  let top_row =
    let total = List.fold_left (fun a (r : Check.report) -> a +. r.Check.elapsed) 0.0 reports in
    let paths = List.fold_left (fun a (r : Check.report) -> a + r.Check.engine_paths) 0 reports in
    {
      layer = "resolve";
      kind = "top-level";
      seconds = total;
      detail =
        Printf.sprintf "%d engine paths over %d query types, all %s" paths
          (List.length qtypes)
          (if List.for_all Check.ok reports then "verified" else "FAILED");
    }
  in
  let rows = manual_rows @ [ raw_row ] @ summarized_rows @ [ top_row ] in
  { rows; total = Unix.gettimeofday () -. t0 }

let print (r : result) =
  Printf.printf
    "Figure 12: per-layer symbolic execution / summarization time\n";
  Printf.printf
    "(paper: every layer under one minute; engine v2.0-fixed, reference zone)\n\n";
  Printf.printf "%-20s %-12s %10s   %s\n" "Layer" "Kind" "Seconds" "Detail";
  List.iter
    (fun row ->
      Printf.printf "%-20s %-12s %10.3f   %s\n" row.layer row.kind row.seconds
        row.detail)
    r.rows;
  Printf.printf "\nTotal wall-clock: %.2fs (paper: < 1 min per layer)\n" r.total
