lib/dnsv/table3.ml: Engine List Loc Option Printf Refine
