lib/dnsv/loc.ml: Filename Golite List String Sys
