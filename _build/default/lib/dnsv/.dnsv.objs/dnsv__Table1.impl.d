lib/dnsv/table1.ml: Array Dns Dnstree Engine List Minir Printf Refine Smt Spec String Symex Unix
