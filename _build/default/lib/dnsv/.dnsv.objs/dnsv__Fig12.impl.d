lib/dnsv/fig12.ml: Dns Engine Hashtbl List Option Printf Refine Spec Unix
