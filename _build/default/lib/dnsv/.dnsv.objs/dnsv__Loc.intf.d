lib/dnsv/loc.mli: Golite
