lib/dnsv/fig12.mli: Dns Engine Refine Spec
