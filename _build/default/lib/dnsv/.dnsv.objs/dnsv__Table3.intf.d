lib/dnsv/table3.mli: Engine
