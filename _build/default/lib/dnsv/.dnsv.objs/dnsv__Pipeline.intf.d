lib/dnsv/pipeline.mli: Dns Engine Format Refine
