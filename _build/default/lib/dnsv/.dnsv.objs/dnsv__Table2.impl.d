lib/dnsv/table2.ml: Dns Engine Format List Printf Refine Spec Unix
