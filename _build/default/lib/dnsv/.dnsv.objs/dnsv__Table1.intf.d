lib/dnsv/table1.mli: Dns Dnstree Refine Smt Spec Symex
