lib/dnsv/pipeline.ml: Dns Engine Format List Printf Refine String Unix
