lib/dnsv/table2.mli: Dns Engine Refine Spec
