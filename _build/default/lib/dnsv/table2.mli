(* Experiment: Table 2 (§7) — the production issues found and prevented
   by formal verification.

   For each of the nine seeded bugs we verify the affected engine
   version against the top-level specification (on the bug's witness
   zone and query type) and report whether DNS-V caught it, the kind of
   evidence (functional-correctness mismatch vs. reachable panic), and
   a concretized counterexample query. The corrected version of every
   engine must verify clean on the same inputs. *)

module Rr = Dns.Rr
module Message = Dns.Message
module Check = Refine.Check
module Fixtures = Spec.Fixtures
module Versions = Engine.Versions
module Bugs = Engine.Bugs
type evidence = Mismatch of string | Runtime_error of string | Not_caught
type row = {
  index : int;
  version : string;
  classification : string;
  description : string;
  caught : bool;
  evidence : evidence;
  witness : string;
  fixed_clean : bool;
  elapsed : float;
}
type result = { rows : row list; elapsed : float; }
val config_for_bug : int -> Engine.Builder.config
val run : unit -> result
val all_caught : result -> bool
val print : result -> unit
