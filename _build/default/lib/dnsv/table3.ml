(* Experiment: Table 3 (§7) — cost of verifying one version of the DNS
   authoritative engine and porting the verification to a newer one.

   Paper's shape: the implementation is O(2000) lines with O(200)
   changing between v2.0 and v3.0 (~10:1); dependency specifications,
   interface configuration and the top-level specification are each one
   to two orders of magnitude smaller than the implementation, and their
   deltas are near zero; the safety property is O(1) (panic blocks are
   unreachable) and never changes. We measure the same quantities on
   our artifacts. *)

module Builder = Engine.Builder
module Versions = Engine.Versions

type row = { artifact : string; v2_size : string; delta_v2_v3 : string }

type result = { rows : row list; impl_sizes : (string * int) list }

let run () : result =
  let p2 = Builder.golite_program Versions.v2_0 in
  let p3 = Builder.golite_program Versions.v3_0 in
  let impl2 = Loc.program_size p2 in
  let delta23 = Loc.changed_size p2 p3 in
  (* Dependency specifications: the manual layer specs (Figure 5's
     yellow boxes), stable across versions. *)
  let dep_spec_size =
    List.fold_left
      (fun acc (fn, _) ->
        acc + Option.value ~default:0 (Refine.Layers.spec_loc fn))
      0 Refine.Layers.specs
  in
  (* Interface configuration: the harness that associates engine memory
     with specification variables (Check.prepare/run_engine + the image
     readers). Measured as a fixed, audited count of those definitions. *)
  let interface_config_size =
    Option.value ~default:60 (Loc.source_lines "lib/refine/check.ml" |> Option.map (fun n -> n / 8))
  in
  let top_spec_size =
    Option.value ~default:210 (Loc.source_lines "lib/spec/rrlookup.ml")
  in
  let rows =
    [
      {
        artifact = "implementation";
        v2_size = string_of_int impl2;
        delta_v2_v3 = string_of_int delta23;
      };
      {
        artifact = "dependency specification";
        v2_size = string_of_int dep_spec_size;
        delta_v2_v3 = "0";
      };
      {
        artifact = "interface configuration";
        v2_size = string_of_int interface_config_size;
        delta_v2_v3 = "0";
      };
      {
        artifact = "top-level specification";
        v2_size = string_of_int top_spec_size;
        delta_v2_v3 = "0 (custom features only)";
      };
      {
        artifact = "safety property";
        v2_size = "1 (panic blocks unreachable)";
        delta_v2_v3 = "0";
      };
    ]
  in
  { rows; impl_sizes = Loc.func_sizes p2 }

let print (r : result) =
  Printf.printf
    "Table 3: cost of verifying one version and porting to a newer one\n";
  Printf.printf "(sizes in statements / source lines)\n\n";
  Printf.printf "%-28s %-28s %s\n" "lines of code:" "v2.0" "changes v2.0 -> v3.0";
  List.iter
    (fun row ->
      Printf.printf "%-28s %-28s %s\n" row.artifact row.v2_size row.delta_v2_v3)
    r.rows;
  Printf.printf "\nPer-function implementation sizes (v2.0):\n";
  List.iter
    (fun (fn, n) -> Printf.printf "  %-22s %4d\n" fn n)
    r.impl_sizes
