(* The control-plane domain tree (§6.5).

   Built from a validated zone configuration: one node per owner name
   *and* per implied empty non-terminal, each carrying its full name.
   Siblings form a binary search tree ordered by the canonical label
   order (wildcard label smallest), threaded through left/right, with
   the parent's [down] pointing at the BST root — the left/right/down
   shape of Figure 11. *)

module Name = Dns.Name
module Label = Dns.Label
module Rr = Dns.Rr
module Zone = Dns.Zone

type rrset = { set_rtype : Rr.rtype; rdatas : Rr.rdata list }

type node = {
  name : Name.t;
  mutable left : node option;
  mutable right : node option;
  mutable down : node option;
  rrsets : rrset list;
  is_wildcard : bool;
  has_data : bool; (* owns records (not a pure empty non-terminal) *)
}

type t = { root : node; zone : Zone.t }

(* Group records at [name] into rrsets (stable order: first appearance
   of each type). *)
let rrsets_at (z : Zone.t) name : rrset list =
  let records = Zone.records_at z name in
  let types =
    List.fold_left
      (fun acc (r : Rr.t) ->
        if List.exists (Rr.equal_rtype r.Rr.rtype) acc then acc
        else acc @ [ r.Rr.rtype ])
      [] records
  in
  List.map
    (fun ty ->
      {
        set_rtype = ty;
        rdatas =
          List.filter_map
            (fun (r : Rr.t) ->
              if Rr.equal_rtype r.Rr.rtype ty then Some r.Rr.rdata else None)
            records;
      })
    types

(* All node names: owners plus every ancestor down to the origin (the
   empty non-terminals), deduplicated. *)
let node_names (z : Zone.t) : Name.t list =
  let origin = Zone.origin z in
  let add acc name = if List.exists (Name.equal name) acc then acc else name :: acc in
  let rec ancestors acc name =
    let acc = add acc name in
    if Name.equal name origin then acc
    else
      match Name.parent name with
      | Some p when Name.is_under ~ancestor:origin p -> ancestors acc p
      | _ -> acc
  in
  List.fold_left
    (fun acc (r : Rr.t) ->
      if Name.is_under ~ancestor:origin r.Rr.rname then
        ancestors acc r.Rr.rname
      else acc)
    [ origin ] (Zone.records z)

(* Build a balanced BST from a sorted list of sibling nodes. Balance
   matters for realism (and it places the wildcard away from the BST
   root, which is what makes the v2.0 wildcard-search bug reachable). *)
let rec build_bst (sorted : node array) lo hi : node option =
  if lo > hi then None
  else
    let mid = (lo + hi) / 2 in
    let n = sorted.(mid) in
    n.left <- build_bst sorted lo (mid - 1);
    n.right <- build_bst sorted (mid + 1) hi;
    Some n

(* Sibling order: canonical order of the distinguishing (leftmost)
   label, wildcard first. *)
let sibling_compare (a : node) (b : node) =
  match (Name.leftmost a.name, Name.leftmost b.name) with
  | Some la, Some lb ->
      let wa = Label.is_wildcard la and wb = Label.is_wildcard lb in
      if wa && not wb then -1
      else if wb && not wa then 1
      else Label.compare la lb
  | _ -> compare a.name b.name

let build (z : Zone.t) : t =
  let names = node_names z in
  let mk name =
    let rrsets = rrsets_at z name in
    {
      name;
      left = None;
      right = None;
      down = None;
      rrsets;
      is_wildcard = Name.is_wildcard name;
      has_data = rrsets <> [];
    }
  in
  let nodes = List.map mk names in
  let find name = List.find (fun n -> Name.equal n.name name) nodes in
  let origin = Zone.origin z in
  (* Children of each node, linked as balanced BSTs. *)
  List.iter
    (fun parent_node ->
      let children =
        List.filter
          (fun n ->
            match Name.parent n.name with
            | Some p -> Name.equal p parent_node.name
            | None -> false)
          nodes
      in
      let sorted = Array.of_list (List.sort sibling_compare children) in
      parent_node.down <- build_bst sorted 0 (Array.length sorted - 1))
    nodes;
  { root = find origin; zone = z }

let root t = t.root

(* Depth-first traversal (down, then left/right of each BST). *)
let fold (f : 'a -> node -> 'a) (acc : 'a) (t : t) : 'a =
  let rec go acc = function
    | None -> acc
    | Some n ->
        let acc = f acc n in
        let acc = go acc n.left in
        let acc = go acc n.right in
        go acc n.down
  in
  go acc (Some t.root)

let node_count t = fold (fun n _ -> n + 1) 0 t

let find_node t name =
  fold (fun acc n -> if Name.equal n.name name then Some n else acc) None t

(* Invariant checks, used by property tests: BST order within each
   sibling level, parent prefixes, wildcard flags. *)
let check_invariants (t : t) : string list =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let rec bst_ok (n : node option) ~(lo : node option) ~(hi : node option) =
    match n with
    | None -> ()
    | Some n ->
        (match lo with
        | Some l when sibling_compare n l <= 0 ->
            err "BST order violated at %s" (Name.to_string n.name)
        | _ -> ());
        (match hi with
        | Some h when sibling_compare n h >= 0 ->
            err "BST order violated at %s" (Name.to_string n.name)
        | _ -> ());
        bst_ok n.left ~lo ~hi:(Some n);
        bst_ok n.right ~lo:(Some n) ~hi
  in
  let rec walk (n : node) =
    bst_ok n.down ~lo:None ~hi:None;
    let rec each = function
      | None -> ()
      | Some (c : node) ->
          (match Name.parent c.name with
          | Some p when Name.equal p n.name -> ()
          | _ -> err "child %s not under %s" (Name.to_string c.name) (Name.to_string n.name));
          if Name.is_wildcard c.name <> c.is_wildcard then
            err "wildcard flag wrong at %s" (Name.to_string c.name);
          each c.left;
          each c.right;
          walk c
    in
    each n.down
  in
  walk t.root;
  List.rev !errs
