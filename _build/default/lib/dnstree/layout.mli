(* The shared data layout between the control plane (heap encoder), the
   engine source (Golite structs) and the verifier (decoding).

   Names are fixed-capacity arrays of label codes in *reversed* order
   (top label first, Figure 10), padded with code 0. Rdata is carried as
   an opaque interned id plus the embedded target name (the only rdata
   component resolution logic interprets: CNAME/NS/MX/SRV chasing and
   glue). *)

module Ty = Minir.Ty
val max_labels : int
val max_rdatas : int
val max_rrsets : int
val max_rrs : int
val max_additional : int
val max_stack : int
val k_closest : int
val k_exact : int
val k_delegation : int
val nomatch : int
val exactmatch : int
val partialmatch : int
val name_array : Golite.Ast.ty
val structs : Golite.Ast.struct_def list
val tenv : Ty.tenv
val struct_def : string -> Ty.struct_def
val field_index : string -> string -> int
module Rr = Dns.Rr
type interner = {
  coder : Dns.Label.Coder.t;
  mutable data_by_id : (int * Rr.rdata) list;
  mutable next_id : int;
}
val create_interner : unit -> interner
val intern_rdata : interner -> Rr.rdata -> int
val rdata_of_id : interner -> int -> Rr.rdata option
val encode_name : interner -> Dns.Name.t -> int array * int
val decode_name : interner -> int array -> int -> Dns.Name.t
