(* Heap encoding: lay a domain tree out as concrete Minir memory blocks —
   the "concrete in-heap domain tree" the control plane supplies as the
   engine's runtime environment (§6.5). *)

module Value = Minir.Value
module Name = Dns.Name
module Rr = Dns.Rr

type t = {
  memory : Value.memory;
  root : Value.ptr;
  interner : Layout.interner;
  node_blocks : (Name.t * int) list; (* node name → block id *)
  tree : Tree.t;
}

let mnull = Value.MNull
let mint n = Value.MInt n
let mbool b = Value.MBool b

let encode_name_mval (it : Layout.interner) name : Value.mval * Value.mval =
  let codes, len = Layout.encode_name it name in
  (Value.MArray (Array.map mint codes), mint len)

let zero_rdata () =
  Value.MStruct
    [| Value.MArray (Array.make Layout.max_labels (mint 0)); mint 0; mbool false; mint 0 |]

let encode_rdata (it : Layout.interner) (rd : Rr.rdata) : Value.mval =
  let id = Layout.intern_rdata it rd in
  match Rr.rdata_target rd with
  | Some target ->
      let codes, len = encode_name_mval it target in
      Value.MStruct [| codes; len; mbool true; mint id |]
  | None ->
      let empty = Value.MArray (Array.make Layout.max_labels (mint 0)) in
      Value.MStruct [| empty; mint 0; mbool false; mint id |]

let zero_rrset () =
  Value.MStruct
    [|
      mint 0; mint 0;
      Value.MArray (Array.init Layout.max_rdatas (fun _ -> zero_rdata ()));
    |]

let encode_rrset (it : Layout.interner) (s : Tree.rrset) : Value.mval =
  let rdatas = Array.init Layout.max_rdatas (fun _ -> zero_rdata ()) in
  let count = List.length s.Tree.rdatas in
  if count > Layout.max_rdatas then
    invalid_arg
      (Printf.sprintf "rrset of %s exceeds %d rdatas"
         (Rr.rtype_to_string s.Tree.set_rtype)
         Layout.max_rdatas);
  List.iteri (fun i rd -> rdatas.(i) <- encode_rdata it rd) s.Tree.rdatas;
  Value.MStruct
    [| mint (Rr.rtype_code s.Tree.set_rtype); mint count; Value.MArray rdatas |]

let encode (tree : Tree.t) : t =
  let it = Layout.create_interner () in
  (* Pre-intern every label occurring in node names in canonical order,
     so that integer code order agrees with the sibling BST order the
     tree builder used (the engine navigates left/right by comparing
     codes). The wildcard label already holds the smallest code. *)
  let all_labels =
    Tree.fold
      (fun acc node ->
        List.fold_left
          (fun acc l ->
            if Dns.Label.is_wildcard l || List.exists (Dns.Label.equal l) acc
            then acc
            else l :: acc)
          acc
          (Name.labels node.Tree.name))
      [] tree
  in
  List.iter
    (fun l -> ignore (Dns.Label.Coder.code it.Layout.coder l))
    (List.sort Dns.Label.compare all_labels);
  (* Assign block ids first so sibling/child pointers can be emitted in
     one pass. *)
  let nodes = List.rev (Tree.fold (fun acc n -> n :: acc) [] tree) in
  let ids = List.mapi (fun i n -> (n, i)) nodes in
  let id_of (n : Tree.node) =
    match List.find_opt (fun (n', _) -> n' == n) ids with
    | Some (_, i) -> i
    | None -> assert false
  in
  let ptr_of = function
    | None -> mnull
    | Some n -> Value.MPtr { Value.block = id_of n; path = [] }
  in
  let encode_node (n : Tree.node) : Value.mval =
    let labels, len = encode_name_mval it n.Tree.name in
    let rrsets = Array.init Layout.max_rrsets (fun _ -> zero_rrset ()) in
    let nsets = List.length n.Tree.rrsets in
    if nsets > Layout.max_rrsets then
      invalid_arg
        (Printf.sprintf "node %s exceeds %d rrsets"
           (Name.to_string n.Tree.name) Layout.max_rrsets);
    List.iteri (fun i s -> rrsets.(i) <- encode_rrset it s) n.Tree.rrsets;
    Value.MStruct
      [|
        labels;
        len;
        ptr_of n.Tree.left;
        ptr_of n.Tree.right;
        ptr_of n.Tree.down;
        mint nsets;
        Value.MArray rrsets;
        mbool n.Tree.is_wildcard;
        mbool n.Tree.has_data;
      |]
  in
  (* Allocate in id order so block ids match. *)
  let memory =
    List.fold_left
      (fun mem n ->
        let mem, ptr = Value.alloc mem (encode_node n) in
        assert (ptr.Value.block = id_of n);
        mem)
      Value.empty_memory nodes
  in
  {
    memory;
    root = { Value.block = id_of (Tree.root tree); path = [] };
    interner = it;
    node_blocks = List.map (fun (n, i) -> (n.Tree.name, i)) ids;
    tree;
  }

(* ------------------------------------------------------------------ *)
(* Runtime objects for one query                                      *)
(* ------------------------------------------------------------------ *)

let alloc_of_ty mem ty =
  Value.alloc mem (Value.mval_default Layout.tenv ty)

(* Allocate the query name array and return (memory, ptr, len). *)
let alloc_qname (t : t) mem (qname : Name.t) : Value.memory * Value.ptr * int =
  let codes, len = Layout.encode_name t.interner qname in
  let mem, ptr = Value.alloc mem (Value.MArray (Array.map mint codes)) in
  (mem, ptr, len)

let alloc_response mem = alloc_of_ty mem (Minir.Ty.Struct "Response")

(* ------------------------------------------------------------------ *)
(* Decoding a Response block back into the message model              *)
(* ------------------------------------------------------------------ *)

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let as_int = function
  | Value.MInt n -> n
  | mv -> decode_error "expected int cell, got %a" Value.pp_mval mv

let as_bool = function
  | Value.MBool b -> b
  | mv -> decode_error "expected bool cell, got %a" Value.pp_mval mv

let decode_rr (t : t) (rr_mval : Value.mval) : Rr.t =
  match rr_mval with
  | Value.MStruct
      [| Value.MArray rname; rname_len; rtype; _target; _tlen; _has; data_id |]
    ->
      let rname =
        Layout.decode_name t.interner (Array.map as_int rname) (as_int rname_len)
      in
      let rtype =
        match Rr.rtype_of_code (as_int rtype) with
        | Some ty -> ty
        | None -> decode_error "unknown rtype code %d" (as_int rtype)
      in
      let rdata =
        match Layout.rdata_of_id t.interner (as_int data_id) with
        | Some rd -> rd
        | None -> decode_error "unknown rdata id %d" (as_int data_id)
      in
      Rr.make rname rtype rdata
  | mv -> decode_error "malformed RR %a" Value.pp_mval mv

let decode_section (t : t) (count : Value.mval) (cells : Value.mval) :
    Rr.t list =
  match cells with
  | Value.MArray arr ->
      List.init (as_int count) (fun i -> decode_rr t arr.(i))
  | mv -> decode_error "malformed section %a" Value.pp_mval mv

let decode_response (t : t) (mem : Value.memory) (resp : Value.ptr) :
    Dns.Message.response =
  match Value.load_mval mem resp with
  | Value.MStruct
      [| rcode; aa; nans; answer; nauth; authority; nadd; additional |] ->
      let rcode =
        match Dns.Message.rcode_of_code (as_int rcode) with
        | Some rc -> rc
        | None -> decode_error "unknown rcode %d" (as_int rcode)
      in
      {
        Dns.Message.rcode;
        aa = as_bool aa;
        answer = decode_section t nans answer;
        authority = decode_section t nauth authority;
        additional = decode_section t nadd additional;
      }
  | mv -> decode_error "malformed Response %a" Value.pp_mval mv
