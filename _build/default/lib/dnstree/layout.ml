(* The shared data layout between the control plane (heap encoder), the
   engine source (Golite structs) and the verifier (decoding).

   Names are fixed-capacity arrays of label codes in *reversed* order
   (top label first, Figure 10), padded with code 0. Rdata is carried as
   an opaque interned id plus the embedded target name (the only rdata
   component resolution logic interprets: CNAME/NS/MX/SRV chasing and
   glue). *)

module Ty = Minir.Ty

(* Capacities. Kept small: they bound the symbolic path space (§6.5). *)
let max_labels = 6 (* labels per name *)
let max_rdatas = 3 (* rdatas per rrset *)
let max_rrsets = 6 (* rrsets per node *)
let max_rrs = 16 (* records per answer/authority section *)
let max_additional = 8 (* additional-section cap (best-effort, like UDP) *)
let max_stack = 8 (* NodeStack depth *)

(* Match kinds returned by TreeSearch. *)
let k_closest = 0 (* no exact node; result is the closest encloser *)
let k_exact = 1
let k_delegation = 2 (* walk stopped at a delegation cut *)

(* compareNames results (Figure 4 / Figure 10). *)
let nomatch = 0
let exactmatch = 1
let partialmatch = 2

(* Golite struct definitions (the engine's own data structures). *)
let name_array = Golite.Ast.Tarray (Golite.Ast.Tint, max_labels)

let structs : Golite.Ast.struct_def list =
  let open Golite.Ast in
  [
    {
      sname = "Rdata";
      fields =
        [
          ("target", name_array);
          ("targetLen", Tint);
          ("hasTarget", Tbool);
          ("dataId", Tint);
        ];
    };
    {
      sname = "RRSet";
      fields =
        [
          ("rtype", Tint);
          ("count", Tint);
          ("rdatas", Tarray (Tstruct "Rdata", max_rdatas));
        ];
    };
    {
      sname = "TreeNode";
      fields =
        [
          ("labels", name_array);
          ("labelsLen", Tint);
          ("left", Tptr (Tstruct "TreeNode"));
          ("right", Tptr (Tstruct "TreeNode"));
          ("down", Tptr (Tstruct "TreeNode"));
          ("nsets", Tint);
          ("rrsets", Tarray (Tstruct "RRSet", max_rrsets));
          ("isWildcard", Tbool);
          ("hasData", Tbool);
        ];
    };
    {
      sname = "RR";
      fields =
        [
          ("rname", name_array);
          ("rnameLen", Tint);
          ("rtype", Tint);
          ("target", name_array);
          ("targetLen", Tint);
          ("hasTarget", Tbool);
          ("dataId", Tint);
        ];
    };
    {
      sname = "Response";
      fields =
        [
          ("rcode", Tint);
          ("aa", Tbool);
          ("nanswer", Tint);
          ("answer", Tarray (Tstruct "RR", max_rrs));
          ("nauthority", Tint);
          ("authority", Tarray (Tstruct "RR", max_rrs));
          ("nadditional", Tint);
          ("additional", Tarray (Tstruct "RR", max_additional));
        ];
    };
    {
      sname = "NodeStack";
      fields =
        [ ("nodes", Tarray (Tptr (Tstruct "TreeNode"), max_stack)); ("level", Tint) ];
    };
    {
      sname = "SearchResult";
      fields = [ ("node", Tptr (Tstruct "TreeNode")); ("kind", Tint) ];
    };
  ]

let tenv : Ty.tenv = Golite.Ast.lower_structs structs

(* Field indices, used by the heap encoder and decoder. Computed from
   the single definition above so they can never drift. *)
let struct_def name = Ty.find_struct tenv name
let field_index sname fname = fst (Ty.field_index (struct_def sname) fname)

(* ------------------------------------------------------------------ *)
(* Rdata interning                                                    *)
(* ------------------------------------------------------------------ *)

module Rr = Dns.Rr

type interner = {
  coder : Dns.Label.Coder.t;
  mutable data_by_id : (int * Rr.rdata) list;
  mutable next_id : int;
}

let create_interner () =
  { coder = Dns.Label.Coder.create (); data_by_id = []; next_id = 1 }

let intern_rdata (it : interner) (rd : Rr.rdata) : int =
  match
    List.find_opt (fun (_, rd') -> Rr.equal_rdata rd rd') it.data_by_id
  with
  | Some (id, _) -> id
  | None ->
      let id = it.next_id in
      it.next_id <- id + 1;
      it.data_by_id <- (id, rd) :: it.data_by_id;
      id

let rdata_of_id (it : interner) id : Rr.rdata option =
  Option.map snd (List.find_opt (fun (i, _) -> i = id) it.data_by_id)

(* A name as a padded reversed code array plus its length. *)
let encode_name (it : interner) (n : Dns.Name.t) : int array * int =
  let codes = Dns.Name.codes it.coder n in
  let len = List.length codes in
  if len > max_labels then
    invalid_arg
      (Printf.sprintf "name %s exceeds max depth %d" (Dns.Name.to_string n)
         max_labels);
  let arr = Array.make max_labels 0 in
  List.iteri (fun i c -> arr.(i) <- c) codes;
  (arr, len)

let decode_name (it : interner) (codes : int array) (len : int) : Dns.Name.t =
  let cs = Array.to_list (Array.sub codes 0 len) in
  Dns.Name.of_codes it.coder cs
