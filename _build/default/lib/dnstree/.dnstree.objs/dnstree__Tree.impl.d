lib/dnstree/tree.ml: Array Dns Format List
