lib/dnstree/encode.mli: Dns Format Layout Minir Tree
