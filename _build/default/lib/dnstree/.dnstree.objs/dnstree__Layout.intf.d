lib/dnstree/layout.mli: Dns Golite Minir
