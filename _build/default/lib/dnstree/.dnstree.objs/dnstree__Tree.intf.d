lib/dnstree/tree.mli: Dns
