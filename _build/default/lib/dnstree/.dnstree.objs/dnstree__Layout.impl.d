lib/dnstree/layout.ml: Array Dns Golite List Minir Option Printf
