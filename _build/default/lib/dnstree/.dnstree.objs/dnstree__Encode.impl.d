lib/dnstree/encode.ml: Array Dns Format Layout List Minir Printf Tree
