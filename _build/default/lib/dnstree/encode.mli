(* Heap encoding: lay a domain tree out as concrete Minir memory blocks —
   the "concrete in-heap domain tree" the control plane supplies as the
   engine's runtime environment (§6.5). *)

module Value = Minir.Value
module Name = Dns.Name
module Rr = Dns.Rr
type t = {
  memory : Value.memory;
  root : Value.ptr;
  interner : Layout.interner;
  node_blocks : (Name.t * int) list;
  tree : Tree.t;
}
val mnull : Value.mval
val mint : int -> Value.mval
val mbool : bool -> Value.mval
val encode_name_mval :
  Layout.interner -> Dns.Name.t -> Value.mval * Value.mval
val zero_rdata : unit -> Value.mval
val encode_rdata : Layout.interner -> Rr.rdata -> Value.mval
val zero_rrset : unit -> Value.mval
val encode_rrset :
  Layout.interner -> Tree.rrset -> Value.mval
val encode : Tree.t -> t
val alloc_of_ty : Value.memory -> Minir.Ty.t -> Value.memory * Value.ptr
val alloc_qname :
  t -> Value.memory -> Name.t -> Value.memory * Value.ptr * int
val alloc_response : Value.memory -> Value.memory * Value.ptr
exception Decode_error of string
val decode_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val as_int : Value.mval -> int
val as_bool : Value.mval -> bool
val decode_rr : t -> Value.mval -> Rr.t
val decode_section : t -> Value.mval -> Value.mval -> Rr.t list
val decode_response : t -> Value.memory -> Value.ptr -> Dns.Message.response
