(* The control-plane domain tree (§6.5).

   Built from a validated zone configuration: one node per owner name
   *and* per implied empty non-terminal, each carrying its full name.
   Siblings form a binary search tree ordered by the canonical label
   order (wildcard label smallest), threaded through left/right, with
   the parent's [down] pointing at the BST root — the left/right/down
   shape of Figure 11. *)

module Name = Dns.Name
module Label = Dns.Label
module Rr = Dns.Rr
module Zone = Dns.Zone
type rrset = { set_rtype : Rr.rtype; rdatas : Rr.rdata list; }
type node = {
  name : Name.t;
  mutable left : node option;
  mutable right : node option;
  mutable down : node option;
  rrsets : rrset list;
  is_wildcard : bool;
  has_data : bool;
}
type t = { root : node; zone : Zone.t; }
val rrsets_at : Zone.t -> Dns.Name.t -> rrset list
val node_names : Zone.t -> Name.t list
val build_bst : node array -> int -> int -> node option
val sibling_compare : node -> node -> int
val build : Zone.t -> t
val root : t -> node
val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
val node_count : t -> int
val find_node : t -> Name.t -> node option
val check_invariants : t -> string list
