lib/symex/sval.mli: Format Int Map Minir Seq Set Smt
