lib/symex/exec.ml: List Map Minir Smt String Sval
