lib/symex/summary.ml: Array Buffer Exec Fun Hashtbl List Minir Printf Smt String Sval Unix
