lib/symex/summary.mli: Buffer Exec Hashtbl Minir Smt Sval
