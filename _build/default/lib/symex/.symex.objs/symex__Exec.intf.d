lib/symex/exec.mli: Map Minir Seq Smt String Sval
