lib/symex/sval.ml: Array Format Int List Map Minir Set Smt
