(* Symbolic values and the flexible memory model (paper §5.1, AbsLLVM).

   Memory is the same block/path shape as the concrete interpreter's,
   but scalar cells hold SMT *terms*, so any individual field of a
   struct can be abstract (a symbolic term) while its siblings stay
   concrete — the partial abstraction the paper needs for production
   data structures. Pointers are always concrete: the domain tree heap
   is concrete (§6.5) and allocation is deterministic per path. *)

module Term = Smt.Term
module Value = Minir.Value
module Ty = Minir.Ty

type sval =
  | SInt of Term.t
  | SBool of Term.t
  | SPtr of Value.ptr
  | SNull
  | SUnit

type scell =
  | CInt of Term.t
  | CBool of Term.t
  | CPtr of Value.ptr
  | CNull
  | CStruct of scell array
  | CArray of scell array

exception Symbolic_error of string

let error fmt = Format.kasprintf (fun s -> raise (Symbolic_error s)) fmt

let pp_sval fmt = function
  | SInt t -> Term.pp fmt t
  | SBool t -> Term.pp fmt t
  | SPtr p -> Value.pp_ptr fmt p
  | SNull -> Format.pp_print_string fmt "null"
  | SUnit -> Format.pp_print_string fmt "()"

let rec pp_scell fmt = function
  | CInt t | CBool t -> Term.pp fmt t
  | CPtr p -> Value.pp_ptr fmt p
  | CNull -> Format.pp_print_string fmt "null"
  | CStruct fs ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_seq
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_scell)
        (Array.to_seq fs)
  | CArray cs ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_seq
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_scell)
        (Array.to_seq cs)

(* ------------------------------------------------------------------ *)
(* Conversions                                                        *)
(* ------------------------------------------------------------------ *)

let scell_of_sval = function
  | SInt t -> CInt t
  | SBool t -> CBool t
  | SPtr p -> CPtr p
  | SNull -> CNull
  | SUnit -> error "cannot store unit"

let sval_of_scell = function
  | CInt t -> SInt t
  | CBool t -> SBool t
  | CPtr p -> SPtr p
  | CNull -> SNull
  | CStruct _ | CArray _ -> error "loading a whole aggregate"

(* Lift a concrete memory value (e.g. the encoded domain tree) into the
   symbolic domain: integers/booleans become constant terms. *)
let rec scell_of_mval = function
  | Value.MInt n -> CInt (Term.int n)
  | Value.MBool b -> CBool (Term.of_bool b)
  | Value.MPtr p -> CPtr p
  | Value.MNull -> CNull
  | Value.MUndef -> error "undefined cell in initial memory"
  | Value.MStruct fs -> CStruct (Array.map scell_of_mval fs)
  | Value.MArray cs -> CArray (Array.map scell_of_mval cs)

(* Zero-initialized cell tree for a type (Newobject / Alloca). *)
let rec scell_default (tenv : Ty.tenv) (ty : Ty.t) : scell =
  match ty with
  | Ty.I1 -> CBool Term.false_
  | Ty.I64 -> CInt (Term.int 0)
  | Ty.Ptr _ | Ty.Opaque_ptr -> CNull
  | Ty.Array (t, n) -> CArray (Array.init n (fun _ -> scell_default tenv t))
  | Ty.Struct name ->
      let def = Ty.find_struct tenv name in
      CStruct
        (Array.of_list
           (List.map (fun f -> scell_default tenv f.Ty.fty) def.Ty.fields))

(* ------------------------------------------------------------------ *)
(* Cell navigation                                                    *)
(* ------------------------------------------------------------------ *)

let rec cell_get (c : scell) (path : int list) : scell =
  match (c, path) with
  | c, [] -> c
  | CStruct fs, i :: rest ->
      if i < 0 || i >= Array.length fs then error "struct index %d" i
      else cell_get fs.(i) rest
  | CArray cs, i :: rest ->
      if i < 0 || i >= Array.length cs then
        error "array index %d out of symbolic bounds %d" i (Array.length cs)
      else cell_get cs.(i) rest
  | (CInt _ | CBool _ | CPtr _ | CNull), _ :: _ -> error "indexing a scalar"

let rec cell_set (c : scell) (path : int list) (v : scell) : scell =
  match (c, path) with
  | _, [] -> v
  | CStruct fs, i :: rest ->
      if i < 0 || i >= Array.length fs then error "struct index %d" i
      else begin
        let fs = Array.copy fs in
        fs.(i) <- cell_set fs.(i) rest v;
        CStruct fs
      end
  | CArray cs, i :: rest ->
      if i < 0 || i >= Array.length cs then error "array index %d" i
      else begin
        let cs = Array.copy cs in
        cs.(i) <- cell_set cs.(i) rest v;
        CArray cs
      end
  | (CInt _ | CBool _ | CPtr _ | CNull), _ :: _ -> error "indexing a scalar"

(* Fold over all scalar cells with their paths. *)
let rec fold_scalars (f : 'a -> int list -> scell -> 'a) (acc : 'a)
    (rev_prefix : int list) (c : scell) : 'a =
  match c with
  | CInt _ | CBool _ | CPtr _ | CNull -> f acc (List.rev rev_prefix) c
  | CStruct cells | CArray cells ->
      let acc = ref acc in
      Array.iteri
        (fun i sub -> acc := fold_scalars f !acc (i :: rev_prefix) sub)
        cells;
      !acc

let equal_scalar (a : scell) (b : scell) =
  match (a, b) with
  | CInt x, CInt y | CBool x, CBool y -> x = y
  | CPtr p, CPtr q -> p = q
  | CNull, CNull -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Symbolic memory                                                    *)
(* ------------------------------------------------------------------ *)

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type memory = {
  blocks : scell Int_map.t;
  next_block : int;
  stack_blocks : Int_set.t;
      (* alloca'd frame slots: freed on function exit, so never part of a
         module's observable effects (§5.1) *)
}

let memory_of_concrete (m : Value.memory) : memory =
  {
    blocks = Int_map.map scell_of_mval m.Value.blocks;
    next_block = m.Value.next_block;
    stack_blocks = Int_set.empty;
  }

let block_value (m : memory) b =
  match Int_map.find_opt b m.blocks with
  | Some c -> c
  | None -> error "dangling block %d" b

let alloc ?(stack = false) (m : memory) (c : scell) : memory * Value.ptr =
  let b = m.next_block in
  ( {
      blocks = Int_map.add b c m.blocks;
      next_block = b + 1;
      stack_blocks =
        (if stack then Int_set.add b m.stack_blocks else m.stack_blocks);
    },
    { Value.block = b; path = [] } )

let is_stack_block (m : memory) b = Int_set.mem b m.stack_blocks

let load (m : memory) (p : Value.ptr) : sval =
  sval_of_scell (cell_get (block_value m p.Value.block) p.Value.path)

let load_cell (m : memory) (p : Value.ptr) : scell =
  cell_get (block_value m p.Value.block) p.Value.path

let store (m : memory) (p : Value.ptr) (v : scell) : memory =
  let root = block_value m p.Value.block in
  {
    m with
    blocks = Int_map.add p.Value.block (cell_set root p.Value.path v) m.blocks;
  }
