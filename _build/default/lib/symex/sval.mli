(* Symbolic values and the flexible memory model (paper §5.1, AbsLLVM).

   Memory is the same block/path shape as the concrete interpreter's,
   but scalar cells hold SMT *terms*, so any individual field of a
   struct can be abstract (a symbolic term) while its siblings stay
   concrete — the partial abstraction the paper needs for production
   data structures. Pointers are always concrete: the domain tree heap
   is concrete (§6.5) and allocation is deterministic per path. *)

module Term = Smt.Term
module Value = Minir.Value
module Ty = Minir.Ty
type sval =
    SInt of Term.t
  | SBool of Term.t
  | SPtr of Value.ptr
  | SNull
  | SUnit
type scell =
    CInt of Term.t
  | CBool of Term.t
  | CPtr of Value.ptr
  | CNull
  | CStruct of scell array
  | CArray of scell array
exception Symbolic_error of string
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val pp_sval : Format.formatter -> sval -> unit
val pp_scell : Format.formatter -> scell -> unit
val scell_of_sval : sval -> scell
val sval_of_scell : scell -> sval
val scell_of_mval : Value.mval -> scell
val scell_default : Ty.tenv -> Ty.t -> scell
val cell_get : scell -> int list -> scell
val cell_set : scell -> int list -> scell -> scell
val fold_scalars :
  ('a -> int list -> scell -> 'a) -> 'a -> int list -> scell -> 'a
val equal_scalar : scell -> scell -> bool
module Int_map :
  sig
    type key = Int.t
    type 'a t = 'a Map.Make(Int).t
    val empty : 'a t
    val add : key -> 'a -> 'a t -> 'a t
    val add_to_list : key -> 'a -> 'a list t -> 'a list t
    val update : key -> ('a option -> 'a option) -> 'a t -> 'a t
    val singleton : key -> 'a -> 'a t
    val remove : key -> 'a t -> 'a t
    val merge :
      (key -> 'a option -> 'b option -> 'c option) -> 'a t -> 'b t -> 'c t
    val union : (key -> 'a -> 'a -> 'a option) -> 'a t -> 'a t -> 'a t
    val cardinal : 'a t -> int
    val bindings : 'a t -> (key * 'a) list
    val min_binding : 'a t -> key * 'a
    val min_binding_opt : 'a t -> (key * 'a) option
    val max_binding : 'a t -> key * 'a
    val max_binding_opt : 'a t -> (key * 'a) option
    val choose : 'a t -> key * 'a
    val choose_opt : 'a t -> (key * 'a) option
    val find : key -> 'a t -> 'a
    val find_opt : key -> 'a t -> 'a option
    val find_first : (key -> bool) -> 'a t -> key * 'a
    val find_first_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val find_last : (key -> bool) -> 'a t -> key * 'a
    val find_last_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val map : ('a -> 'b) -> 'a t -> 'b t
    val mapi : (key -> 'a -> 'b) -> 'a t -> 'b t
    val filter : (key -> 'a -> bool) -> 'a t -> 'a t
    val filter_map : (key -> 'a -> 'b option) -> 'a t -> 'b t
    val partition : (key -> 'a -> bool) -> 'a t -> 'a t * 'a t
    val split : key -> 'a t -> 'a t * 'a option * 'a t
    val is_empty : 'a t -> bool
    val mem : key -> 'a t -> bool
    val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
    val compare : ('a -> 'a -> int) -> 'a t -> 'a t -> int
    val for_all : (key -> 'a -> bool) -> 'a t -> bool
    val exists : (key -> 'a -> bool) -> 'a t -> bool
    val to_list : 'a t -> (key * 'a) list
    val of_list : (key * 'a) list -> 'a t
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_rev_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_from : key -> 'a t -> (key * 'a) Seq.t
    val add_seq : (key * 'a) Seq.t -> 'a t -> 'a t
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
module Int_set :
  sig
    type elt = Int.t
    type t = Set.Make(Int).t
    val empty : t
    val add : elt -> t -> t
    val singleton : elt -> t
    val remove : elt -> t -> t
    val union : t -> t -> t
    val inter : t -> t -> t
    val disjoint : t -> t -> bool
    val diff : t -> t -> t
    val cardinal : t -> int
    val elements : t -> elt list
    val min_elt : t -> elt
    val min_elt_opt : t -> elt option
    val max_elt : t -> elt
    val max_elt_opt : t -> elt option
    val choose : t -> elt
    val choose_opt : t -> elt option
    val find : elt -> t -> elt
    val find_opt : elt -> t -> elt option
    val find_first : (elt -> bool) -> t -> elt
    val find_first_opt : (elt -> bool) -> t -> elt option
    val find_last : (elt -> bool) -> t -> elt
    val find_last_opt : (elt -> bool) -> t -> elt option
    val iter : (elt -> unit) -> t -> unit
    val fold : (elt -> 'acc -> 'acc) -> t -> 'acc -> 'acc
    val map : (elt -> elt) -> t -> t
    val filter : (elt -> bool) -> t -> t
    val filter_map : (elt -> elt option) -> t -> t
    val partition : (elt -> bool) -> t -> t * t
    val split : elt -> t -> t * bool * t
    val is_empty : t -> bool
    val mem : elt -> t -> bool
    val equal : t -> t -> bool
    val compare : t -> t -> int
    val subset : t -> t -> bool
    val for_all : (elt -> bool) -> t -> bool
    val exists : (elt -> bool) -> t -> bool
    val to_list : t -> elt list
    val of_list : elt list -> t
    val to_seq_from : elt -> t -> elt Seq.t
    val to_seq : t -> elt Seq.t
    val to_rev_seq : t -> elt Seq.t
    val add_seq : elt Seq.t -> t -> t
    val of_seq : elt Seq.t -> t
  end
type memory = {
  blocks : scell Int_map.t;
  next_block : int;
  stack_blocks : Int_set.t;
}
val memory_of_concrete : Value.memory -> memory
val block_value : memory -> Int_map.key -> scell
val alloc : ?stack:bool -> memory -> scell -> memory * Value.ptr
val is_stack_block : memory -> Int_set.elt -> bool
val load : memory -> Value.ptr -> sval
val load_cell : memory -> Value.ptr -> scell
val store : memory -> Value.ptr -> scell -> memory
