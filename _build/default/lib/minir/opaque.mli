(* Opaque-pointer and bitcast resolution (paper §5.5).

   In-production code casts typed pointers to raw byte pointers and
   addresses fields by byte offsets. The verifier wants typed pointers
   with index paths, so this pass tracks each chain of opaque pointers
   from the bitcast that introduced it, accumulates constant byte
   offsets, and — using the data layout — rewrites opaque loads/stores
   back into typed GEP + load/store.

   Registers are statically single-assignment in Minir, so a single
   global scan per function discovers every chain. Chains with
   non-constant offsets are reported as resolution failures: the
   code patterns of our engine (struct-field addressing) never produce
   them. *)

type failure = { fn : string; reg : string; reason : string; }
exception Unresolvable of failure
val unresolvable : string -> string -> string -> 'a
type origin = {
  base : Instr.operand;
  pointee : Ty.t;
  offset : int;
}
val resolve_func :
  Instr.program -> Instr.func -> Instr.func
val resolve : Instr.program -> Instr.program
