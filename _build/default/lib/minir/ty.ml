(* Minir types — the miniature LLVM type system the verifier reasons over.

   Named structs give us the circular types the domain tree needs
   (a TreeNode holds pointers to TreeNodes, §5.1). [Opaque_ptr] is the
   untyped `i8*`-style pointer produced by bitcasts; the [Opaque] pass
   retypes it before verification (§5.5). *)

type t =
  | I1 (* booleans / flags *)
  | I64 (* integers; labels, lengths, codes *)
  | Ptr of t
  | Opaque_ptr
  | Struct of string (* named struct, resolved in the type environment *)
  | Array of t * int (* fixed-capacity array *)

type field = { fname : string; fty : t }
type struct_def = { sname : string; fields : field list }

(* The type environment: named struct definitions of a program. *)
type tenv = struct_def list

let find_struct (tenv : tenv) name =
  match List.find_opt (fun d -> d.sname = name) tenv with
  | Some d -> d
  | None -> invalid_arg ("Ty.find_struct: unknown struct " ^ name)

let field_index (def : struct_def) fname =
  let rec go i = function
    | [] -> invalid_arg ("Ty.field_index: no field " ^ fname ^ " in " ^ def.sname)
    | f :: rest -> if f.fname = fname then (i, f.fty) else go (i + 1) rest
  in
  go 0 def.fields

let field_at (def : struct_def) i =
  match List.nth_opt def.fields i with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "Ty.field_at: struct %s has no field %d" def.sname i)

let rec equal a b =
  match (a, b) with
  | I1, I1 | I64, I64 | Opaque_ptr, Opaque_ptr -> true
  | Ptr a, Ptr b -> equal a b
  | Struct a, Struct b -> a = b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | (I1 | I64 | Ptr _ | Opaque_ptr | Struct _ | Array _), _ -> false

let rec pp fmt = function
  | I1 -> Format.pp_print_string fmt "i1"
  | I64 -> Format.pp_print_string fmt "i64"
  | Ptr t -> Format.fprintf fmt "%a*" pp t
  | Opaque_ptr -> Format.pp_print_string fmt "i8*"
  | Struct name -> Format.fprintf fmt "%%%s" name
  | Array (t, n) -> Format.fprintf fmt "[%d x %a]" n pp t

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Data layout: byte sizes and offsets, used by the opaque-pointer
   resolution pass. Every scalar (i1, i64, pointers) occupies one
   8-byte slot; aggregates are packed without padding. *)
(* ------------------------------------------------------------------ *)

let scalar_size = 8

let rec size_of tenv = function
  | I1 | I64 | Ptr _ | Opaque_ptr -> scalar_size
  | Array (t, n) -> n * size_of tenv t
  | Struct name ->
      let def = find_struct tenv name in
      List.fold_left (fun acc f -> acc + size_of tenv f.fty) 0 def.fields

let field_offset tenv (def : struct_def) index =
  let rec go i off = function
    | [] -> invalid_arg "Ty.field_offset: index out of range"
    | f :: rest -> if i = index then off else go (i + 1) (off + size_of tenv f.fty) rest
  in
  go 0 0 def.fields

(* Resolve a byte offset within [ty] to an index path (GEP-style), the
   §5.5 translation from opaque to typed pointers. *)
let rec path_of_offset tenv ty offset : int list =
  if offset = 0 then
    match ty with
    | I1 | I64 | Ptr _ | Opaque_ptr -> []
    | Struct _ | Array _ -> descend tenv ty 0
  else descend tenv ty offset

and descend tenv ty offset =
  match ty with
  | I1 | I64 | Ptr _ | Opaque_ptr ->
      if offset = 0 then []
      else invalid_arg "Ty.path_of_offset: offset into scalar"
  | Array (elt, n) ->
      let esz = size_of tenv elt in
      let i = offset / esz in
      if i >= n then invalid_arg "Ty.path_of_offset: offset past array end";
      i :: path_of_offset tenv elt (offset mod esz)
  | Struct name ->
      let def = find_struct tenv name in
      let rec pick i off fields =
        match fields with
        | [] -> invalid_arg "Ty.path_of_offset: offset past struct end"
        | f :: rest ->
            let sz = size_of tenv f.fty in
            if offset < off + sz then i :: path_of_offset tenv f.fty (offset - off)
            else pick (i + 1) (off + sz) rest
      in
      pick 0 0 def.fields

(* Type reached by following an index path. *)
let rec ty_at tenv ty path =
  match (ty, path) with
  | ty, [] -> ty
  | Array (elt, _), _ :: rest -> ty_at tenv elt rest
  | Struct name, i :: rest ->
      let def = find_struct tenv name in
      ty_at tenv (field_at def i).fty rest
  | (I1 | I64 | Ptr _ | Opaque_ptr), _ :: _ ->
      invalid_arg "Ty.ty_at: path into scalar"
