(* Opaque-pointer and bitcast resolution (paper §5.5).

   In-production code casts typed pointers to raw byte pointers and
   addresses fields by byte offsets. The verifier wants typed pointers
   with index paths, so this pass tracks each chain of opaque pointers
   from the bitcast that introduced it, accumulates constant byte
   offsets, and — using the data layout — rewrites opaque loads/stores
   back into typed GEP + load/store.

   Registers are statically single-assignment in Minir, so a single
   global scan per function discovers every chain. Chains with
   non-constant offsets are reported as resolution failures: the
   code patterns of our engine (struct-field addressing) never produce
   them. *)

type failure = { fn : string; reg : string; reason : string }

exception Unresolvable of failure

let unresolvable fn reg reason = raise (Unresolvable { fn; reg; reason })

(* An opaque pointer's provenance: a typed base operand (with its pointee
   type) plus a constant byte offset from it. *)
type origin = { base : Instr.operand; pointee : Ty.t; offset : int }

let resolve_func (p : Instr.program) (f : Instr.func) : Instr.func =
  let tenv = p.Instr.tenv in
  let reg_types = Typing.infer p f in
  let origins : (Instr.reg, origin) Hashtbl.t = Hashtbl.create 16 in
  (* Pass 1: collect origins of opaque registers. *)
  List.iter
    (fun (_, b) ->
      List.iter
        (function
          | Instr.Assign (r, Instr.Bitcast src) ->
              let src_ty =
                Typing.operand_ty reg_types f.Instr.params src
              in
              (match src_ty with
              | Ty.Ptr pointee ->
                  Hashtbl.replace origins r { base = src; pointee; offset = 0 }
              | Ty.Opaque_ptr -> (
                  match src with
                  | Instr.Reg sr -> (
                      match Hashtbl.find_opt origins sr with
                      | Some o -> Hashtbl.replace origins r o
                      | None ->
                          unresolvable f.Instr.fn_name r
                            "bitcast of untracked opaque pointer")
                  | _ ->
                      unresolvable f.Instr.fn_name r
                        "bitcast of non-register opaque pointer")
              | _ ->
                  unresolvable f.Instr.fn_name r
                    ("bitcast of non-pointer type " ^ Ty.to_string src_ty))
          | Instr.Assign (r, Instr.Byte_gep (src, off)) -> (
              let delta =
                match off with
                | Instr.Const_int n -> n
                | _ ->
                    unresolvable f.Instr.fn_name r
                      "byte_gep with non-constant offset"
              in
              match src with
              | Instr.Reg sr -> (
                  match Hashtbl.find_opt origins sr with
                  | Some o ->
                      Hashtbl.replace origins r
                        { o with offset = o.offset + delta }
                  | None ->
                      unresolvable f.Instr.fn_name r
                        "byte_gep of untracked opaque pointer")
              | _ ->
                  unresolvable f.Instr.fn_name r
                    "byte_gep of non-register pointer")
          | Instr.Assign _ | Instr.Store _ | Instr.Opaque_store _
          | Instr.Call_void _ ->
              ())
        b.Instr.insns)
    f.Instr.blocks;
  (* Pass 2: rewrite opaque memory operations to typed ones. Resolved
     bitcast/byte_gep definitions become typed GEPs so the registers stay
     defined (later passes may drop them if unused). *)
  let typed_gep r o =
    let path = Ty.path_of_offset tenv o.pointee o.offset in
    Instr.Assign
      (r, Instr.Gep (o.pointee, o.base, List.map (fun i -> Instr.Const_int i) path))
  in
  let origin_of_operand where = function
    | Instr.Reg r -> (
        match Hashtbl.find_opt origins r with
        | Some o -> o
        | None -> unresolvable f.Instr.fn_name r ("untracked opaque pointer at " ^ where))
    | _ -> unresolvable f.Instr.fn_name "<const>" ("non-register opaque pointer at " ^ where)
  in
  let fresh_counter = ref 0 in
  let fresh_reg base =
    incr fresh_counter;
    Printf.sprintf "%s.oq%d" base !fresh_counter
  in
  let rewrite_block (label, b) =
    let insns =
      List.concat_map
        (fun insn ->
          match insn with
          | Instr.Assign (r, Instr.Bitcast _) | Instr.Assign (r, Instr.Byte_gep _)
            ->
              [ typed_gep r (Hashtbl.find origins r) ]
          | Instr.Assign (r, Instr.Opaque_load (ty, src)) ->
              let o = origin_of_operand "load" src in
              let path = Ty.path_of_offset tenv o.pointee o.offset in
              let target_ty = Ty.ty_at tenv o.pointee path in
              if not (Ty.equal target_ty ty) then
                unresolvable f.Instr.fn_name r "opaque load type mismatch";
              if path = [] then [ Instr.Assign (r, Instr.Load (ty, o.base)) ]
              else
                let addr = fresh_reg r in
                [
                  Instr.Assign
                    ( addr,
                      Instr.Gep
                        ( o.pointee,
                          o.base,
                          List.map (fun i -> Instr.Const_int i) path ) );
                  Instr.Assign (r, Instr.Load (ty, Instr.Reg addr));
                ]
          | Instr.Opaque_store (ty, v, dst) ->
              let o = origin_of_operand "store" dst in
              let path = Ty.path_of_offset tenv o.pointee o.offset in
              let target_ty = Ty.ty_at tenv o.pointee path in
              if not (Ty.equal target_ty ty) then
                unresolvable f.Instr.fn_name "<store>" "opaque store type mismatch";
              if path = [] then [ Instr.Store (ty, v, o.base) ]
              else
                let addr = fresh_reg "st" in
                [
                  Instr.Assign
                    ( addr,
                      Instr.Gep
                        ( o.pointee,
                          o.base,
                          List.map (fun i -> Instr.Const_int i) path ) );
                  Instr.Store (ty, v, Instr.Reg addr);
                ]
          | insn -> [ insn ])
        b.Instr.insns
    in
    (label, { b with Instr.insns })
  in
  { f with Instr.blocks = List.map rewrite_block f.Instr.blocks }

(* Resolve every opaque-pointer operation in [p]. Programs without such
   operations pass through unchanged. *)
let resolve (p : Instr.program) : Instr.program =
  { p with Instr.funcs = List.map (resolve_func p) p.Instr.funcs }
