lib/minir/value.mli: Format Int Map Seq Ty
