lib/minir/opaque.ml: Hashtbl Instr List Printf Ty Typing
