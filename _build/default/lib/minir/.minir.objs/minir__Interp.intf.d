lib/minir/interp.mli: Hashtbl Instr Value
