lib/minir/ty.mli: Format
