lib/minir/value.ml: Array Format Int List Map Printf String Ty
