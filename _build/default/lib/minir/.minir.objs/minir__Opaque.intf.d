lib/minir/opaque.mli: Instr Ty
