lib/minir/instr.ml: List Printf Ty
