lib/minir/pretty.mli: Format Instr
