lib/minir/typing.mli: Format Hashtbl Instr Ty
