lib/minir/wellform.mli: Format Instr
