lib/minir/ty.ml: Format List Printf
