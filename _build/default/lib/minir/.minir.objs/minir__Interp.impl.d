lib/minir/interp.ml: Hashtbl Instr List Value
