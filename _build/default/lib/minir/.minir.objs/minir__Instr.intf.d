lib/minir/instr.mli: Ty
