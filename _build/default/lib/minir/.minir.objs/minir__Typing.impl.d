lib/minir/typing.ml: Format Hashtbl Instr List Ty
