lib/minir/wellform.ml: Format Hashtbl Instr List Ty Typing
