lib/minir/pretty.ml: Format Instr List Ty
