(* LLVM-flavoured textual rendering of Minir programs, for logs, reports
   and golden tests. *)

val pp_operand : Format.formatter -> Instr.operand -> unit
val binop_name : Instr.binop -> string
val icmp_name : Instr.icmp -> string
val pp_rvalue : Format.formatter -> Instr.rvalue -> unit
val pp_instr : Format.formatter -> Instr.instr -> unit
val pp_terminator : Format.formatter -> Instr.terminator -> unit
val pp_func : Format.formatter -> Instr.func -> unit
val pp_program : Format.formatter -> Instr.program -> unit
val program_to_string : Instr.program -> string
val func_to_string : Instr.func -> string
