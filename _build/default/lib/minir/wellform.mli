(* Static well-formedness checking for Minir programs.

   Run before any verification or interpretation: a malformed program is
   a bug in the frontend, and rejecting it early keeps both executors
   free of defensive cases. *)

type error = { fn : string; where : string; message : string; }
val pp_error : Format.formatter -> error -> unit
type result = Ok | Errors of error list
val check_func : Instr.program -> Instr.func -> error list
val check : Instr.program -> result
exception Ill_formed of error list
val check_exn : Instr.program -> unit
