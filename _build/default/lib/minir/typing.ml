(* Register type inference for Minir functions.

   Every register has exactly one static definition (the Golite frontend
   emits fresh temporaries), so types are computed by a single scan.
   Used by the well-formedness checker and the opaque-pointer pass. *)

type env = (Instr.reg, Ty.t) Hashtbl.t

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* Result type of a GEP: walk [ty] by the indices. Struct indices must be
   constant; array indices may be dynamic. *)
let rec ty_after_gep tenv (ty : Ty.t) (indices : Instr.operand list) : Ty.t =
  match (ty, indices) with
  | ty, [] -> ty
  | Ty.Array (elt, _), _ :: rest -> ty_after_gep tenv elt rest
  | Ty.Struct name, Instr.Const_int i :: rest ->
      let def = Ty.find_struct tenv name in
      ty_after_gep tenv (Ty.field_at def i).Ty.fty rest
  | Ty.Struct name, _ :: _ ->
      type_error "gep: non-constant field index into struct %s" name
  | (Ty.I1 | Ty.I64 | Ty.Ptr _ | Ty.Opaque_ptr), _ :: _ ->
      type_error "gep: indexing into scalar %s" (Ty.to_string ty)

let operand_ty (env : env) (params : (Instr.reg * Ty.t) list) = function
  | Instr.Const_int _ -> Ty.I64
  | Instr.Const_bool _ -> Ty.I1
  | Instr.Null ty -> ty
  | Instr.Reg r -> (
      match Hashtbl.find_opt env r with
      | Some ty -> ty
      | None -> (
          match List.assoc_opt r params with
          | Some ty -> ty
          | None -> type_error "unknown register %%%s" r))

(* Infer the types of all registers in [f], given the signatures of the
   whole program (for calls). *)
let infer (p : Instr.program) (f : Instr.func) : env =
  let env : env = Hashtbl.create 64 in
  List.iter (fun (r, ty) -> Hashtbl.replace env r ty) f.Instr.params;
  let tenv = p.Instr.tenv in
  let rvalue_ty = function
    | Instr.Binop ((Instr.Add | Instr.Sub | Instr.Mul | Instr.Sdiv | Instr.Srem), _, _)
      ->
        Ty.I64
    | Instr.Binop ((Instr.And_ | Instr.Or_ | Instr.Xor), _, _) -> Ty.I1
    | Instr.Icmp _ -> Ty.I1
    | Instr.Not _ -> Ty.I1
    | Instr.Alloca ty | Instr.Newobject ty -> Ty.Ptr ty
    | Instr.Load (ty, _) -> ty
    | Instr.Gep (pointee, _, indices) ->
        Ty.Ptr (ty_after_gep tenv pointee indices)
    | Instr.Call (name, _) -> (
        let callee = Instr.find_func p name in
        match callee.Instr.ret_ty with
        | Some ty -> ty
        | None -> type_error "call of void function %s in value position" name)
    | Instr.Bitcast _ -> Ty.Opaque_ptr
    | Instr.Byte_gep _ -> Ty.Opaque_ptr
    | Instr.Opaque_load (ty, _) -> ty
  in
  (* A single scan suffices: every rvalue's type is determined by its own
     shape (loads and GEPs carry their types explicitly). *)
  List.iter
    (fun (_, b) ->
      List.iter
        (function
          | Instr.Assign (r, rv) -> Hashtbl.replace env r (rvalue_ty rv)
          | Instr.Store _ | Instr.Opaque_store _ | Instr.Call_void _ -> ())
        b.Instr.insns)
    f.Instr.blocks;
  env
