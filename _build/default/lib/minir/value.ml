(* Concrete runtime values and memory for the Minir interpreter.

   Memory is a CompCert-style collection of non-overlapping blocks
   addressed by block ids; a pointer is a block id plus an index path
   into the block's aggregate value (§5.1). The same block/path shape is
   reused by the symbolic executor, whose cells hold terms instead of
   concrete scalars. *)

type ptr = { block : int; path : int list }

type t =
  | VInt of int
  | VBool of bool
  | VPtr of ptr
  | VNull
  | VUnit

(* Aggregate memory values. [MUndef] marks never-written cells; loading
   one is a (detected) runtime error, which the interpreter reports like
   a panic. *)
type mval =
  | MInt of int
  | MBool of bool
  | MPtr of ptr
  | MNull
  | MStruct of mval array
  | MArray of mval array
  | MUndef

let rec mval_default (tenv : Ty.tenv) (ty : Ty.t) : mval =
  match ty with
  | Ty.I1 -> MBool false
  | Ty.I64 -> MInt 0
  | Ty.Ptr _ | Ty.Opaque_ptr -> MNull
  | Ty.Array (t, n) -> MArray (Array.init n (fun _ -> mval_default tenv t))
  | Ty.Struct name ->
      let def = Ty.find_struct tenv name in
      MStruct
        (Array.of_list
           (List.map (fun f -> mval_default tenv f.Ty.fty) def.Ty.fields))

let rec mval_undef (tenv : Ty.tenv) (ty : Ty.t) : mval =
  match ty with
  | Ty.I1 | Ty.I64 | Ty.Ptr _ | Ty.Opaque_ptr -> MUndef
  | Ty.Array (t, n) -> MArray (Array.init n (fun _ -> mval_undef tenv t))
  | Ty.Struct name ->
      let def = Ty.find_struct tenv name in
      MStruct
        (Array.of_list
           (List.map (fun f -> mval_undef tenv f.Ty.fty) def.Ty.fields))

exception Runtime_panic of string

let panic fmt = Format.kasprintf (fun s -> raise (Runtime_panic s)) fmt

(* Navigate an aggregate by an index path. *)
let rec mval_get (m : mval) (path : int list) : mval =
  match (m, path) with
  | m, [] -> m
  | MStruct fields, i :: rest ->
      if i < 0 || i >= Array.length fields then
        panic "struct field index %d out of range" i
      else mval_get fields.(i) rest
  | MArray cells, i :: rest ->
      if i < 0 || i >= Array.length cells then
        panic "array index %d out of bounds (cap %d)" i (Array.length cells)
      else mval_get cells.(i) rest
  | (MInt _ | MBool _ | MPtr _ | MNull | MUndef), _ :: _ ->
      panic "indexing into a scalar"

let rec mval_set (m : mval) (path : int list) (v : mval) : mval =
  match (m, path) with
  | _, [] -> v
  | MStruct fields, i :: rest ->
      if i < 0 || i >= Array.length fields then
        panic "struct field index %d out of range" i
      else begin
        let fields = Array.copy fields in
        fields.(i) <- mval_set fields.(i) rest v;
        MStruct fields
      end
  | MArray cells, i :: rest ->
      if i < 0 || i >= Array.length cells then
        panic "array index %d out of bounds (cap %d)" i (Array.length cells)
      else begin
        let cells = Array.copy cells in
        cells.(i) <- mval_set cells.(i) rest v;
        MArray cells
      end
  | (MInt _ | MBool _ | MPtr _ | MNull | MUndef), _ :: _ ->
      panic "indexing into a scalar"

let mval_of_value = function
  | VInt n -> MInt n
  | VBool b -> MBool b
  | VPtr p -> MPtr p
  | VNull -> MNull
  | VUnit -> invalid_arg "mval_of_value: unit"

let value_of_mval = function
  | MInt n -> VInt n
  | MBool b -> VBool b
  | MPtr p -> VPtr p
  | MNull -> VNull
  | MUndef -> panic "load of undefined value"
  | MStruct _ | MArray _ -> invalid_arg "value_of_mval: aggregate"

(* ------------------------------------------------------------------ *)
(* Memory                                                             *)
(* ------------------------------------------------------------------ *)

module Int_map = Map.Make (Int)

type memory = { blocks : mval Int_map.t; next_block : int }

let empty_memory = { blocks = Int_map.empty; next_block = 0 }

let alloc mem mv =
  let b = mem.next_block in
  ( { blocks = Int_map.add b mv mem.blocks; next_block = b + 1 },
    { block = b; path = [] } )

let block_value mem b =
  match Int_map.find_opt b mem.blocks with
  | Some mv -> mv
  | None -> panic "dangling block %d" b

let load mem (p : ptr) : t =
  value_of_mval (mval_get (block_value mem p.block) p.path)

let load_mval mem (p : ptr) : mval = mval_get (block_value mem p.block) p.path

let store mem (p : ptr) (v : mval) : memory =
  let root = block_value mem p.block in
  { mem with blocks = Int_map.add p.block (mval_set root p.path v) mem.blocks }

let pp_ptr fmt p =
  Format.fprintf fmt "&%d%s" p.block
    (String.concat "" (List.map (Printf.sprintf ".%d") p.path))

let pp fmt = function
  | VInt n -> Format.fprintf fmt "%d" n
  | VBool b -> Format.fprintf fmt "%b" b
  | VPtr p -> pp_ptr fmt p
  | VNull -> Format.pp_print_string fmt "null"
  | VUnit -> Format.pp_print_string fmt "()"

let rec pp_mval fmt = function
  | MInt n -> Format.fprintf fmt "%d" n
  | MBool b -> Format.fprintf fmt "%b" b
  | MPtr p -> pp_ptr fmt p
  | MNull -> Format.pp_print_string fmt "null"
  | MUndef -> Format.pp_print_string fmt "undef"
  | MStruct fs ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_seq
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_mval)
        (Array.to_seq fs)
  | MArray cs ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_seq
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_mval)
        (Array.to_seq cs)
