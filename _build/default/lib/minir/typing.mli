(* Register type inference for Minir functions.

   Every register has exactly one static definition (the Golite frontend
   emits fresh temporaries), so types are computed by a single scan.
   Used by the well-formedness checker and the opaque-pointer pass. *)

type env = (Instr.reg, Ty.t) Hashtbl.t
exception Type_error of string
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val ty_after_gep :
  Ty.tenv -> Ty.t -> Instr.operand list -> Ty.t
val operand_ty :
  env ->
  (Instr.reg * Ty.t) list -> Instr.operand -> Ty.t
val infer : Instr.program -> Instr.func -> env
