(* LLVM-flavoured textual rendering of Minir programs, for logs, reports
   and golden tests. *)

open Instr

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "%%%s" r
  | Const_int n -> Format.fprintf fmt "%d" n
  | Const_bool b -> Format.fprintf fmt "%b" b
  | Null ty -> Format.fprintf fmt "null:%a" Ty.pp ty

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | And_ -> "and"
  | Or_ -> "or"
  | Xor -> "xor"

let icmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"

let pp_rvalue fmt = function
  | Binop (op, a, b) ->
      Format.fprintf fmt "%s %a, %a" (binop_name op) pp_operand a pp_operand b
  | Icmp (op, ty, a, b) ->
      Format.fprintf fmt "icmp %s %a %a, %a" (icmp_name op) Ty.pp ty pp_operand
        a pp_operand b
  | Not a -> Format.fprintf fmt "not %a" pp_operand a
  | Alloca ty -> Format.fprintf fmt "alloca %a" Ty.pp ty
  | Load (ty, p) -> Format.fprintf fmt "load %a, %a" Ty.pp ty pp_operand p
  | Gep (ty, base, indices) ->
      Format.fprintf fmt "getelementptr %a, %a" Ty.pp ty pp_operand base;
      List.iter (fun i -> Format.fprintf fmt ", %a" pp_operand i) indices
  | Call (name, args) ->
      Format.fprintf fmt "call @%s(" name;
      List.iteri
        (fun i a ->
          if i > 0 then Format.pp_print_string fmt ", ";
          pp_operand fmt a)
        args;
      Format.pp_print_string fmt ")"
  | Newobject ty -> Format.fprintf fmt "newobject %a" Ty.pp ty
  | Bitcast o -> Format.fprintf fmt "bitcast %a to i8*" pp_operand o
  | Byte_gep (p, off) ->
      Format.fprintf fmt "byte_gep %a, %a" pp_operand p pp_operand off
  | Opaque_load (ty, p) ->
      Format.fprintf fmt "opaque_load %a, %a" Ty.pp ty pp_operand p

let pp_instr fmt = function
  | Assign (r, rv) -> Format.fprintf fmt "  %%%s = %a" r pp_rvalue rv
  | Store (ty, v, p) ->
      Format.fprintf fmt "  store %a %a, %a" Ty.pp ty pp_operand v pp_operand p
  | Opaque_store (ty, v, p) ->
      Format.fprintf fmt "  opaque_store %a %a, %a" Ty.pp ty pp_operand v
        pp_operand p
  | Call_void (name, args) ->
      Format.fprintf fmt "  call void @%s(" name;
      List.iteri
        (fun i a ->
          if i > 0 then Format.pp_print_string fmt ", ";
          pp_operand fmt a)
        args;
      Format.pp_print_string fmt ")"

let pp_terminator fmt = function
  | Br l -> Format.fprintf fmt "  br label %%%s" l
  | Cond_br (c, l1, l2) ->
      Format.fprintf fmt "  br %a, label %%%s, label %%%s" pp_operand c l1 l2
  | Ret None -> Format.pp_print_string fmt "  ret void"
  | Ret (Some o) -> Format.fprintf fmt "  ret %a" pp_operand o
  | Panic reason -> Format.fprintf fmt "  panic \"%s\"" reason
  | Unreachable -> Format.pp_print_string fmt "  unreachable"

let pp_func fmt (f : func) =
  Format.fprintf fmt "define @%s(" f.fn_name;
  List.iteri
    (fun i (r, ty) ->
      if i > 0 then Format.pp_print_string fmt ", ";
      Format.fprintf fmt "%a %%%s" Ty.pp ty r)
    f.params;
  Format.fprintf fmt ")";
  (match f.ret_ty with
  | Some ty -> Format.fprintf fmt " : %a" Ty.pp ty
  | None -> Format.fprintf fmt " : void");
  Format.fprintf fmt " {@\n";
  List.iter
    (fun (label, b) ->
      Format.fprintf fmt "%s:@\n" label;
      List.iter (fun i -> Format.fprintf fmt "%a@\n" pp_instr i) b.insns;
      Format.fprintf fmt "%a@\n" pp_terminator b.term)
    f.blocks;
  Format.fprintf fmt "}@\n"

let pp_program fmt (p : program) =
  List.iter
    (fun (d : Ty.struct_def) ->
      Format.fprintf fmt "%%%s = type {" d.Ty.sname;
      List.iteri
        (fun i (fl : Ty.field) ->
          if i > 0 then Format.pp_print_string fmt ", ";
          Format.fprintf fmt "%a %s" Ty.pp fl.Ty.fty fl.Ty.fname)
        d.Ty.fields;
      Format.fprintf fmt "}@\n")
    p.tenv;
  Format.pp_print_newline fmt ();
  List.iter (fun f -> Format.fprintf fmt "%a@\n" pp_func f) p.funcs

let program_to_string p = Format.asprintf "%a" pp_program p
let func_to_string f = Format.asprintf "%a" pp_func f
