(* The Minir instruction set: a register-based CFG IR in the style of
   clang -O0 LLVM output.

   No SSA/phi nodes: the Golite frontend allocates one stack slot per
   local variable and compiles reads/writes to load/store, which is the
   code shape GoLLVM emits at the optimization level the paper verifies.
   Safety checks appear as explicit [Panic] terminators on dedicated
   blocks, mirroring the GoLLVM panic blocks of §4.1: verifying safety is
   verifying those blocks unreachable. *)

type reg = string
type label = string

type operand =
  | Reg of reg
  | Const_int of int
  | Const_bool of bool
  | Null of Ty.t (* typed null pointer *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Srem
  | And_ (* bitwise-on-i1, i.e. boolean and *)
  | Or_
  | Xor

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge

type rvalue =
  | Binop of binop * operand * operand
  | Icmp of icmp * Ty.t * operand * operand
      (* the type of the compared operands: I64, I1 or a pointer type *)
  | Not of operand
  | Alloca of Ty.t
  | Load of Ty.t * operand (* loaded type, pointer *)
  | Gep of Ty.t * operand * operand list
      (* pointee type of the base pointer; indices navigate into it *)
  | Call of string * operand list
  | Newobject of Ty.t (* heap allocation, zero-initialized (Go `new`) *)
  | Bitcast of operand (* typed pointer → opaque pointer *)
  | Byte_gep of operand * operand (* opaque pointer + byte offset *)
  | Opaque_load of Ty.t * operand (* load through an opaque pointer *)

type instr =
  | Assign of reg * rvalue
  | Store of Ty.t * operand * operand (* stored type, value, pointer *)
  | Opaque_store of Ty.t * operand * operand (* through an opaque pointer *)
  | Call_void of string * operand list (* call evaluated for effect *)

type terminator =
  | Br of label
  | Cond_br of operand * label * label
  | Ret of operand option
  | Panic of string (* safety-check failure: reason *)
  | Unreachable

type block = { insns : instr list; term : terminator }

type func = {
  fn_name : string;
  params : (reg * Ty.t) list;
  ret_ty : Ty.t option;
  entry : label;
  blocks : (label * block) list;
}

type program = { tenv : Ty.tenv; funcs : func list }

let find_func (p : program) name =
  match List.find_opt (fun f -> f.fn_name = name) p.funcs with
  | Some f -> f
  | None -> invalid_arg ("Minir: unknown function " ^ name)

let find_block (f : func) label =
  match List.assoc_opt label f.blocks with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Minir: no block %s in function %s" label f.fn_name)

(* ------------------------------------------------------------------ *)
(* Static measures used by the evaluation reporting (Table 3).        *)
(* ------------------------------------------------------------------ *)

let func_instruction_count (f : func) =
  List.fold_left (fun acc (_, b) -> acc + List.length b.insns + 1) 0 f.blocks

let program_instruction_count (p : program) =
  List.fold_left (fun acc f -> acc + func_instruction_count f) 0 p.funcs

let panic_count (f : func) =
  List.length
    (List.filter (fun (_, b) -> match b.term with Panic _ -> true | _ -> false)
       f.blocks)
