(* Concrete runtime values and memory for the Minir interpreter.

   Memory is a CompCert-style collection of non-overlapping blocks
   addressed by block ids; a pointer is a block id plus an index path
   into the block's aggregate value (§5.1). The same block/path shape is
   reused by the symbolic executor, whose cells hold terms instead of
   concrete scalars. *)

type ptr = { block : int; path : int list; }
type t = VInt of int | VBool of bool | VPtr of ptr | VNull | VUnit
type mval =
    MInt of int
  | MBool of bool
  | MPtr of ptr
  | MNull
  | MStruct of mval array
  | MArray of mval array
  | MUndef
val mval_default : Ty.tenv -> Ty.t -> mval
val mval_undef : Ty.tenv -> Ty.t -> mval
exception Runtime_panic of string
val panic : ('a, Format.formatter, unit, 'b) format4 -> 'a
val mval_get : mval -> int list -> mval
val mval_set : mval -> int list -> mval -> mval
val mval_of_value : t -> mval
val value_of_mval : mval -> t
module Int_map :
  sig
    type key = Int.t
    type 'a t = 'a Map.Make(Int).t
    val empty : 'a t
    val add : key -> 'a -> 'a t -> 'a t
    val add_to_list : key -> 'a -> 'a list t -> 'a list t
    val update : key -> ('a option -> 'a option) -> 'a t -> 'a t
    val singleton : key -> 'a -> 'a t
    val remove : key -> 'a t -> 'a t
    val merge :
      (key -> 'a option -> 'b option -> 'c option) -> 'a t -> 'b t -> 'c t
    val union : (key -> 'a -> 'a -> 'a option) -> 'a t -> 'a t -> 'a t
    val cardinal : 'a t -> int
    val bindings : 'a t -> (key * 'a) list
    val min_binding : 'a t -> key * 'a
    val min_binding_opt : 'a t -> (key * 'a) option
    val max_binding : 'a t -> key * 'a
    val max_binding_opt : 'a t -> (key * 'a) option
    val choose : 'a t -> key * 'a
    val choose_opt : 'a t -> (key * 'a) option
    val find : key -> 'a t -> 'a
    val find_opt : key -> 'a t -> 'a option
    val find_first : (key -> bool) -> 'a t -> key * 'a
    val find_first_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val find_last : (key -> bool) -> 'a t -> key * 'a
    val find_last_opt : (key -> bool) -> 'a t -> (key * 'a) option
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val map : ('a -> 'b) -> 'a t -> 'b t
    val mapi : (key -> 'a -> 'b) -> 'a t -> 'b t
    val filter : (key -> 'a -> bool) -> 'a t -> 'a t
    val filter_map : (key -> 'a -> 'b option) -> 'a t -> 'b t
    val partition : (key -> 'a -> bool) -> 'a t -> 'a t * 'a t
    val split : key -> 'a t -> 'a t * 'a option * 'a t
    val is_empty : 'a t -> bool
    val mem : key -> 'a t -> bool
    val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
    val compare : ('a -> 'a -> int) -> 'a t -> 'a t -> int
    val for_all : (key -> 'a -> bool) -> 'a t -> bool
    val exists : (key -> 'a -> bool) -> 'a t -> bool
    val to_list : 'a t -> (key * 'a) list
    val of_list : (key * 'a) list -> 'a t
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_rev_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_from : key -> 'a t -> (key * 'a) Seq.t
    val add_seq : (key * 'a) Seq.t -> 'a t -> 'a t
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
type memory = { blocks : mval Int_map.t; next_block : int; }
val empty_memory : memory
val alloc : memory -> mval -> memory * ptr
val block_value : memory -> Int_map.key -> mval
val load : memory -> ptr -> t
val load_mval : memory -> ptr -> mval
val store : memory -> ptr -> mval -> memory
val pp_ptr : Format.formatter -> ptr -> unit
val pp : Format.formatter -> t -> unit
val pp_mval : Format.formatter -> mval -> unit
