(* Minir types — the miniature LLVM type system the verifier reasons over.

   Named structs give us the circular types the domain tree needs
   (a TreeNode holds pointers to TreeNodes, §5.1). [Opaque_ptr] is the
   untyped `i8*`-style pointer produced by bitcasts; the [Opaque] pass
   retypes it before verification (§5.5). *)

type t =
    I1
  | I64
  | Ptr of t
  | Opaque_ptr
  | Struct of string
  | Array of t * int
type field = { fname : string; fty : t; }
type struct_def = { sname : string; fields : field list; }
type tenv = struct_def list
val find_struct : tenv -> string -> struct_def
val field_index : struct_def -> string -> int * t
val field_at : struct_def -> int -> field
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val scalar_size : int
val size_of : tenv -> t -> int
val field_offset : tenv -> struct_def -> int -> int
val path_of_offset : tenv -> t -> int -> int list
val descend : tenv -> t -> int -> int list
val ty_at : tenv -> t -> int list -> t
