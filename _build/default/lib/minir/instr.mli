(* The Minir instruction set: a register-based CFG IR in the style of
   clang -O0 LLVM output.

   No SSA/phi nodes: the Golite frontend allocates one stack slot per
   local variable and compiles reads/writes to load/store, which is the
   code shape GoLLVM emits at the optimization level the paper verifies.
   Safety checks appear as explicit [Panic] terminators on dedicated
   blocks, mirroring the GoLLVM panic blocks of §4.1: verifying safety is
   verifying those blocks unreachable. *)

type reg = string
type label = string
type operand =
    Reg of reg
  | Const_int of int
  | Const_bool of bool
  | Null of Ty.t
type binop = Add | Sub | Mul | Sdiv | Srem | And_ | Or_ | Xor
type icmp = Eq | Ne | Slt | Sle | Sgt | Sge
type rvalue =
    Binop of binop * operand * operand
  | Icmp of icmp * Ty.t * operand * operand
  | Not of operand
  | Alloca of Ty.t
  | Load of Ty.t * operand
  | Gep of Ty.t * operand * operand list
  | Call of string * operand list
  | Newobject of Ty.t
  | Bitcast of operand
  | Byte_gep of operand * operand
  | Opaque_load of Ty.t * operand
type instr =
    Assign of reg * rvalue
  | Store of Ty.t * operand * operand
  | Opaque_store of Ty.t * operand * operand
  | Call_void of string * operand list
type terminator =
    Br of label
  | Cond_br of operand * label * label
  | Ret of operand option
  | Panic of string
  | Unreachable
type block = { insns : instr list; term : terminator; }
type func = {
  fn_name : string;
  params : (reg * Ty.t) list;
  ret_ty : Ty.t option;
  entry : label;
  blocks : (label * block) list;
}
type program = { tenv : Ty.tenv; funcs : func list; }
val find_func : program -> string -> func
val find_block : func -> label -> block
val func_instruction_count : func -> int
val program_instruction_count : program -> int
val panic_count : func -> int
