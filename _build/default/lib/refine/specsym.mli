(* The top-level specification, evaluated against a *symbolic* query.

   The concrete executable spec is Spec.Rrlookup; this module is the
   same RFC resolution logic restructured as a decision procedure over a
   symbolic qname (per-label integer variables plus a length variable,
   §5.4) and a concrete zone. The result is a finite set of
   (path condition, abstract response) pairs that partition the query
   space — the specification side of the refinement check (§4.3).

   Record owners distinguish [Sym_query] (the original, symbolic qname —
   e.g. wildcard-synthesized owners) from [Concrete] names (everything
   reached through CNAME chasing), matching exactly which engine memory
   cells hold symbolic terms. *)

module Term = Smt.Term
module Solver = Smt.Solver
module Name = Dns.Name
module Label = Dns.Label
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message
module Rrlookup = Spec.Rrlookup
module Layout = Dnstree.Layout
val qsym_label : int -> Term.t
val qsym_len : Term.t
val domain_constraints : max_labels:int -> Term.t list
type owner = Sym_query | Concrete of Name.t
type srr = { owner : owner; srtype : Rr.rtype; srdata : Rr.rdata; }
type sresponse = {
  srcode : Message.rcode;
  saa : bool;
  sanswer : srr list;
  sauthority : srr list;
  sadditional : srr list;
}
type spath = { cond : Term.t list; resp : sresponse; }
val codes_of : Dns.Label.Coder.t -> Name.t -> int list
val eq_name : Dns.Label.Coder.t -> Name.t -> Term.t
val strictly_under : Dns.Label.Coder.t -> Name.t -> Term.t
val under : Dns.Label.Coder.t -> Name.t -> Term.t
type ctx = {
  zone : Zone.t;
  coder : Label.Coder.t;
  qtype : Rr.rtype;
  mutable solver_calls : int;
}
val feasible : ctx -> Smt.Term.t list -> bool
val branch :
  ctx ->
  Term.t list ->
  Term.t ->
  then_:(Term.t list -> spath list) ->
  else_:(Term.t list -> spath list) -> spath list
val srr_concrete : Rr.t -> srr
val response :
  ?aa:bool ->
  ?answer:srr list ->
  ?authority:srr list -> ?additional:srr list -> Message.rcode -> sresponse
val referral_resp :
  Rrlookup.Zone.t -> Rrlookup.Name.t -> answer:srr list -> sresponse
val soa_auth : Rrlookup.Zone.t -> srr list
val conc_step : ctx -> Name.t -> srr list -> int -> sresponse
val positive_sym : ctx -> Name.t -> Rr.t list -> sresponse
val nodata_sym : ctx -> sresponse
val nxdomain_sym : ctx -> sresponse
val follow_sym : ctx -> Rr.t -> int -> sresponse
val at_node : ctx -> Name.t -> int -> sresponse
val wildcard_at : ctx -> Name.t -> int -> sresponse
val all_nodes : Zone.t -> Name.t list
val by_depth_asc : Name.t list -> Name.t list
val by_depth_desc : Name.t list -> Name.t list
val paths :
  Zone.t ->
  Label.Coder.t -> qtype:Rr.rtype -> max_labels:int -> spath list * int
val query_of_model :
  Label.Coder.t -> Smt.Model.t -> qtype:Rr.rtype -> Message.query
val cond_holds : Smt.Model.t -> Term.t list -> bool
val concretize_response :
  Label.Coder.t -> Smt.Model.t -> sresponse -> Message.response
