lib/refine/raw_name.ml: Array Char Dns Dnstree Engine Format Lazy List Minir Printf Smt String Symex Unix
