lib/refine/check.mli: Dns Dnstree Engine Format Hashtbl Minir Smt Spec Specsym Symex
