lib/refine/specsym.ml: Dns Dnstree List Printf Smt Spec
