lib/refine/layers.mli: Dnstree Minir Smt Spec Symex
