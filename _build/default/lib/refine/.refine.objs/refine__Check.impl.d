lib/refine/check.ml: Array Dns Dnstree Engine Format Hashtbl List Minir Option Printf Smt Spec Specsym Symex Unix
