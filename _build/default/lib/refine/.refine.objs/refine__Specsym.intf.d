lib/refine/specsym.mli: Dns Dnstree Smt Spec
