lib/refine/layers.ml: Array Dnstree Format List Minir Option Printf Smt Spec String Symex Unix
