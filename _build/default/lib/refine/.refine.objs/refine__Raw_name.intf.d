lib/refine/raw_name.mli: Dns Dnstree Engine Smt Symex
