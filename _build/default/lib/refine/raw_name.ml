(* The §6.3 refinement: compareRaw (raw wire bytes, Figure 4) is
   equivalent to the word-level label classification that compareAbs
   (Figure 10) computes.

   The abstraction relation maps a wire-byte name to its label vector;
   two labels are abstractly equal iff their bytes are. As in the paper,
   the second argument is always a *concrete* name from the domain tree,
   and the total length of the symbolic name is bounded; we additionally
   concretize the symbolic name's label *structure* (the sequence of
   label lengths) and leave every content byte symbolic — the
   concretization technique §5.1 describes for the few functions that
   index arrays with data-dependent offsets. For each structure,
   full-path symbolic execution of compareRaw must classify exactly as
   the abstract comparison does, for all byte contents. *)

module Term = Smt.Term
module Solver = Smt.Solver
module Name = Dns.Name
module Layout = Dnstree.Layout
module Name_raw = Engine.Name_raw
module Sval = Symex.Sval
module Exec = Symex.Exec

type case_report = {
  structure : int list; (* label lengths of the symbolic name *)
  against : Name.t; (* the concrete second argument *)
  paths : int;
  failures : string list;
}

type report = {
  cases : case_report list;
  total_paths : int;
  elapsed : float;
}

let ok (r : report) = List.for_all (fun c -> c.failures = []) r.cases

(* Byte variable for position [i] of the symbolic name. *)
let byte_var i = Term.int_var (Printf.sprintf "raw.b%d" i)

(* Build the wire cells for a symbolic name with concrete label
   structure [lens]: length bytes concrete, content bytes symbolic. *)
let symbolic_wire (lens : int list) : Sval.scell * Term.t array option array =
  let cells = Array.make Name_raw.max_bytes (Sval.CInt (Term.int 0)) in
  let groups = Array.make (List.length lens) None in
  let pos = ref 0 in
  List.iteri
    (fun li len ->
      cells.(!pos) <- Sval.CInt (Term.int len);
      incr pos;
      let label_bytes =
        Array.init len (fun j ->
            let t = byte_var (!pos + j) in
            cells.(!pos + j) <- Sval.CInt t;
            t)
      in
      groups.(li) <- Some label_bytes;
      pos := !pos + len)
    lens;
  (Sval.CArray cells, groups)

(* Abstract equality of the k-th-from-the-end labels. *)
let label_eq (sym_lens : int list) (groups : Term.t array option array)
    (conc : Name.t) (k : int) : Term.t =
  let c1 = List.length sym_lens and conc_labels = Name.labels conc in
  let c2 = List.length conc_labels in
  let sym_idx = c1 - 1 - k in
  (* presentation order: last label = topmost *)
  let conc_label =
    Dns.Label.to_string (List.nth conc_labels (c2 - 1 - k))
  in
  let sym_len = List.nth sym_lens sym_idx in
  if sym_len <> String.length conc_label then Term.false_
  else
    match groups.(sym_idx) with
    | Some bytes ->
        Term.and_
          (List.init sym_len (fun j ->
               Term.eq bytes.(j) (Term.int (Char.code conc_label.[j]))))
    | None -> Term.false_

(* Check one (structure, concrete name) case. *)
let check_case (lens : int list) (conc : Name.t) : case_report =
  let prog = Lazy.force Name_raw.compiled in
  let ctx = Exec.create prog in
  let mem = Sval.memory_of_concrete Minir.Value.empty_memory in
  let sym_cells, groups = symbolic_wire lens in
  let mem, n1 = Sval.alloc mem sym_cells in
  let conc_cells =
    Sval.CArray
      (Array.map (fun b -> Sval.CInt (Term.int b)) (Name_raw.wire_bytes conc))
  in
  let mem, n2 = Sval.alloc mem conc_cells in
  let results =
    Exec.run ctx ~memory:mem ~pc:[] ~fn:"compareRaw"
      ~args:[ Sval.SPtr n1; Sval.SPtr n2 ]
  in
  let c1 = List.length lens and c2 = Name.label_count conc in
  let common = min c1 c2 in
  let all_eq =
    Term.and_ (List.init common (fun k -> label_eq lens groups conc k))
  in
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun ((path : Exec.path), outcome) ->
      match outcome with
      | Exec.Panicked m -> fail "compareRaw panicked: %s" m
      | Exec.Returned (Some (Sval.SInt ret)) -> (
          let entails goal =
            match Solver.entails ~hyps:path.Exec.pc goal with
            | Solver.Valid -> true
            | _ -> false
          in
          match ret with
          | Term.Int_const v when v = Layout.exactmatch ->
              if c1 <> c2 then fail "EXACT with different label counts";
              if not (entails all_eq) then
                fail "EXACT path does not entail abstract equality"
          | Term.Int_const v when v = Layout.partialmatch ->
              if c1 <= c2 then fail "PARTIAL without proper ancestry";
              if not (entails all_eq) then
                fail "PARTIAL path does not entail abstract equality"
          | Term.Int_const v when v = Layout.nomatch ->
              (* NOMATCH must imply the abstraction disagrees, unless the
                 counts alone decide it. *)
              if c1 >= c2 && common > 0 && not (entails (Term.not_ all_eq))
              then fail "NOMATCH path does not refute abstract equality"
              else if c1 >= c2 && common = 0 then
                fail "NOMATCH with trivially-equal empty prefix"
          | t -> fail "non-constant return %s" (Term.to_string t))
      | Exec.Returned _ -> fail "compareRaw returned a non-integer")
    results;
  {
    structure = lens;
    against = conc;
    paths = List.length results;
    failures = List.rev !failures;
  }

(* All label structures with at most [max_labels] labels of length at
   most [max_len] whose wire form fits the byte capacity. *)
let structures ~max_labels ~max_len : int list list =
  let rec go depth =
    if depth = 0 then [ [] ]
    else
      let shorter = go (depth - 1) in
      shorter
      @ List.concat_map
          (fun tail ->
            List.init max_len (fun l -> (l + 1) :: tail))
          (List.filter (fun t -> List.length t = depth - 1) shorter)
  in
  List.filter
    (fun lens ->
      List.fold_left (fun a l -> a + l + 1) 1 lens <= Name_raw.max_bytes)
    (go max_labels)

(* A zone with short labels, so that bounded symbolic structures
   actually align with concrete labels and the byte-level comparison
   loops run on symbolic content. *)
let short_label_zone =
  let n = Name.of_string_exn in
  let origin = n "ex.co" in
  Dns.Zone.make origin
    [
      Dns.Rr.soa origin ~mname:(n "ns.ex.co") ~serial:63;
      Dns.Rr.a (n "ns.ex.co") 1;
      Dns.Rr.a (n "ab.ex.co") 2;
      Dns.Rr.a (n "cde.ex.co") 3;
      Dns.Rr.a (n "x.ab.ex.co") 4;
    ]

(* The full §6.3 experiment: every bounded structure against every node
   name of [zone]'s domain tree. *)
let check ?(zone = short_label_zone) ?(max_labels = 4) ?(max_len = 3) () :
    report =
  let t0 = Unix.gettimeofday () in
  let tree = Dnstree.Tree.build zone in
  let node_names =
    List.rev (Dnstree.Tree.fold (fun acc n -> n.Dnstree.Tree.name :: acc) [] tree)
  in
  (* Keep the concrete side within the structural bound too. *)
  let node_names =
    List.filter
      (fun n ->
        List.length (Name.to_wire n) <= Name_raw.max_bytes
        && Name.label_count n <= Layout.max_labels)
      node_names
  in
  let cases =
    List.concat_map
      (fun lens -> List.map (fun conc -> check_case lens conc) node_names)
      (structures ~max_labels ~max_len)
  in
  {
    cases;
    total_paths = List.fold_left (fun a c -> a + c.paths) 0 cases;
    elapsed = Unix.gettimeofday () -. t0;
  }

let print (r : report) =
  Printf.printf
    "compareRaw ≡ compareAbs (§6.3): %d (structure, tree-name) cases, %d \
     byte-level paths, %.2fs — %s\n"
    (List.length r.cases) r.total_paths r.elapsed
    (if ok r then "VERIFIED" else "FAILED");
  List.iter
    (fun c ->
      if c.failures <> [] then
        Printf.printf "  structure [%s] vs %s: %s\n"
          (String.concat ";" (List.map string_of_int c.structure))
          (Name.to_string c.against)
          (String.concat " | " c.failures))
    r.cases
