(* The top-level specification, evaluated against a *symbolic* query.

   The concrete executable spec is Spec.Rrlookup; this module is the
   same RFC resolution logic restructured as a decision procedure over a
   symbolic qname (per-label integer variables plus a length variable,
   §5.4) and a concrete zone. The result is a finite set of
   (path condition, abstract response) pairs that partition the query
   space — the specification side of the refinement check (§4.3).

   Record owners distinguish [Sym_query] (the original, symbolic qname —
   e.g. wildcard-synthesized owners) from [Concrete] names (everything
   reached through CNAME chasing), matching exactly which engine memory
   cells hold symbolic terms. *)

module Term = Smt.Term
module Solver = Smt.Solver
module Name = Dns.Name
module Label = Dns.Label
module Rr = Dns.Rr
module Zone = Dns.Zone
module Message = Dns.Message
module Rrlookup = Spec.Rrlookup
module Layout = Dnstree.Layout

(* The canonical symbolic query variables, shared with the engine-side
   harness. *)
let qsym_label j = Term.int_var (Printf.sprintf "q.n%d" j)
let qsym_len = Term.int_var "q.len"

let domain_constraints ~max_labels =
  [ Term.ge qsym_len (Term.int 0); Term.le qsym_len (Term.int max_labels) ]

type owner = Sym_query | Concrete of Name.t

type srr = { owner : owner; srtype : Rr.rtype; srdata : Rr.rdata }

type sresponse = {
  srcode : Message.rcode;
  saa : bool;
  sanswer : srr list;
  sauthority : srr list;
  sadditional : srr list;
}

type spath = { cond : Term.t list; resp : sresponse }

(* ------------------------------------------------------------------ *)
(* Name conditions                                                    *)
(* ------------------------------------------------------------------ *)

let codes_of coder name = Name.codes coder name

(* qname = [name] *)
let eq_name coder name : Term.t =
  let cs = codes_of coder name in
  Term.and_
    (Term.eq qsym_len (Term.int (List.length cs))
    :: List.mapi (fun j c -> Term.eq (qsym_label j) (Term.int c)) cs)

(* qname strictly under [name] *)
let strictly_under coder name : Term.t =
  let cs = codes_of coder name in
  Term.and_
    (Term.gt qsym_len (Term.int (List.length cs))
    :: List.mapi (fun j c -> Term.eq (qsym_label j) (Term.int c)) cs)

let under coder name : Term.t =
  let cs = codes_of coder name in
  Term.and_
    (Term.ge qsym_len (Term.int (List.length cs))
    :: List.mapi (fun j c -> Term.eq (qsym_label j) (Term.int c)) cs)

(* ------------------------------------------------------------------ *)
(* Enumeration context                                                *)
(* ------------------------------------------------------------------ *)

type ctx = {
  zone : Zone.t;
  coder : Label.Coder.t;
  qtype : Rr.rtype;
  mutable solver_calls : int;
}

let feasible ctx pc =
  ctx.solver_calls <- ctx.solver_calls + 1;
  match Solver.check pc with
  | Solver.Sat _ | Solver.Unknown -> true
  | Solver.Unsat -> false

(* Fork on [cond]; prune infeasible branches. *)
let branch ctx pc cond ~(then_ : Term.t list -> spath list)
    ~(else_ : Term.t list -> spath list) : spath list =
  match cond with
  | Term.True -> then_ pc
  | Term.False -> else_ pc
  | cond -> (
      let ncond = Term.not_ cond in
      let sat_t = feasible ctx (cond :: pc) in
      let sat_f = feasible ctx (ncond :: pc) in
      match (sat_t, sat_f) with
      | true, false -> then_ pc
      | false, true -> else_ pc
      | true, true -> then_ (cond :: pc) @ else_ (ncond :: pc)
      | false, false -> [])

(* ------------------------------------------------------------------ *)
(* Concrete continuation (after CNAME chasing reaches a concrete name):
   mirrors Spec.Rrlookup.step with an explicit budget and accumulated
   (possibly symbolic-owner) answers.                                 *)
(* ------------------------------------------------------------------ *)

let srr_concrete (r : Rr.t) = { owner = Concrete r.Rr.rname; srtype = r.Rr.rtype; srdata = r.Rr.rdata }

let response ?(aa = false) ?(answer = []) ?(authority = []) ?(additional = [])
    srcode =
  {
    srcode;
    saa = aa;
    sanswer = answer;
    sauthority = authority;
    sadditional = additional;
  }

let referral_resp z cut ~answer =
  let r = Rrlookup.referral z cut ~answer:[] in
  {
    srcode = Message.NoError;
    saa = answer <> [];
    sanswer = answer;
    sauthority = List.map srr_concrete r.Message.authority;
    sadditional = List.map srr_concrete r.Message.additional;
  }

let soa_auth z = List.map srr_concrete (Rrlookup.soa_authority z)

let rec conc_step (ctx : ctx) (qname : Name.t) (acc : srr list) (budget : int)
    : sresponse =
  let z = ctx.zone in
  if budget = 0 then { (response Message.ServFail) with sanswer = acc }
  else
    match Rrlookup.highest_cut z qname with
    | Some cut -> referral_resp z cut ~answer:acc
    | None -> (
        let positive answers =
          let concrete = List.map (fun (r : Rr.t) -> { r with Rr.rname = qname }) answers in
          {
            srcode = Message.NoError;
            saa = true;
            sanswer = acc @ List.map srr_concrete concrete;
            sauthority = [];
            sadditional =
              List.map srr_concrete (Rrlookup.additional_for_answers z concrete);
          }
        in
        let nodata () =
          response Message.NoError ~aa:true ~answer:acc ~authority:(soa_auth z)
        in
        let follow (c : Rr.t) =
          let c = { c with Rr.rname = qname } in
          match Rr.rdata_target c.Rr.rdata with
          | Some target when Name.is_under ~ancestor:(Zone.origin z) target ->
              conc_step ctx target (acc @ [ srr_concrete c ]) (budget - 1)
          | _ ->
              response Message.NoError ~aa:true
                ~answer:(acc @ [ srr_concrete c ])
        in
        match Rrlookup.inspect_node z qname ctx.qtype with
        | Rrlookup.Answer rs -> positive rs
        | Rrlookup.Cname c -> follow c
        | Rrlookup.Nodata -> nodata ()
        | Rrlookup.Nonexistent -> (
            let ce = Rrlookup.closest_encloser z qname in
            let wc = Name.child Label.wildcard ce in
            match Rrlookup.inspect_node z wc ctx.qtype with
            | Rrlookup.Answer rs -> positive rs
            | Rrlookup.Cname c -> follow c
            | Rrlookup.Nodata -> nodata ()
            | Rrlookup.Nonexistent ->
                response Message.NXDomain ~aa:true ~answer:acc
                  ~authority:(soa_auth z)))

(* ------------------------------------------------------------------ *)
(* Symbolic first step                                                *)
(* ------------------------------------------------------------------ *)

(* Answer records at a concrete source node, owned by the symbolic
   qname (exact match or wildcard synthesis: in both cases the engine
   writes the query-name cells). *)
let positive_sym ctx (source : Name.t) (answers : Rr.t list) : sresponse =
  let z = ctx.zone in
  ignore source;
  (* Additional processing keys on the rdata targets, which are
     concrete regardless of the owner. *)
  {
    srcode = Message.NoError;
    saa = true;
    sanswer =
      List.map
        (fun (r : Rr.t) -> { owner = Sym_query; srtype = r.Rr.rtype; srdata = r.Rr.rdata })
        answers;
    sauthority = [];
    sadditional =
      List.map srr_concrete (Rrlookup.additional_for_answers z answers);
  }

let nodata_sym ctx : sresponse =
  response Message.NoError ~aa:true ~authority:(soa_auth ctx.zone)

let nxdomain_sym ctx : sresponse =
  response Message.NXDomain ~aa:true ~authority:(soa_auth ctx.zone)

(* Follow a CNAME found at the symbolic step: the CNAME record itself is
   owned by the symbolic qname; the chase continues concretely. *)
let follow_sym ctx (c : Rr.t) (budget : int) : sresponse =
  let z = ctx.zone in
  let cname_rr = { owner = Sym_query; srtype = Rr.CNAME; srdata = c.Rr.rdata } in
  match Rr.rdata_target c.Rr.rdata with
  | Some target when Name.is_under ~ancestor:(Zone.origin z) target ->
      conc_step ctx target [ cname_rr ] (budget - 1)
  | _ -> response Message.NoError ~aa:true ~answer:[ cname_rr ]

(* Handle the symbolic query landing exactly on concrete node [m]. *)
let at_node ctx (m : Name.t) (budget : int) : sresponse =
  match Rrlookup.inspect_node ctx.zone m ctx.qtype with
  | Rrlookup.Answer rs -> positive_sym ctx m rs
  | Rrlookup.Cname c -> follow_sym ctx c budget
  | Rrlookup.Nodata -> nodata_sym ctx
  | Rrlookup.Nonexistent ->
      (* records_at m = [] and yet m is in the node list: impossible,
         node lists come from owner names + ancestors. *)
      nodata_sym ctx

(* Wildcard handling at closest encloser [ce]. *)
let wildcard_at ctx (ce : Name.t) (budget : int) : sresponse =
  let wc = Name.child Label.wildcard ce in
  match Rrlookup.inspect_node ctx.zone wc ctx.qtype with
  | Rrlookup.Answer rs -> positive_sym ctx wc rs
  | Rrlookup.Cname c -> follow_sym ctx c budget
  | Rrlookup.Nodata -> nodata_sym ctx
  | Rrlookup.Nonexistent -> nxdomain_sym ctx

(* All node names (owners + empty non-terminals), and helpers. *)
let all_nodes (z : Zone.t) : Name.t list =
  let tree = Dnstree.Tree.build z in
  List.rev (Dnstree.Tree.fold (fun acc n -> n.Dnstree.Tree.name :: acc) [] tree)

let by_depth_asc names =
  List.sort (fun a b -> compare (Name.label_count a) (Name.label_count b)) names

let by_depth_desc names = List.rev (by_depth_asc names)

(* Enumerate all specification paths for zone/qtype.

   Structured as a label-by-label walk of the concrete domain tree, so
   every branch condition is a single literal (n_j = c, len = d, …) and
   path conditions stay conjunctions of literals — the simple linear
   integer arithmetic shape the paper relies on (§4.2, Table 1). *)
let paths (z : Zone.t) (coder : Label.Coder.t) ~(qtype : Rr.rtype)
    ~(max_labels : int) : spath list * int =
  let ctx = { zone = z; coder; qtype; solver_calls = 0 } in
  let budget = Rrlookup.max_cname_chain in
  let tree = Dnstree.Tree.build z in
  let finish pc resp = [ { cond = List.rev pc; resp } ] in
  (* Children of a node, flattened out of the sibling BST. *)
  let children (node : Dnstree.Tree.node) : Dnstree.Tree.node list =
    let rec bst acc = function
      | None -> acc
      | Some (n : Dnstree.Tree.node) ->
          bst (n :: bst acc n.Dnstree.Tree.right) n.Dnstree.Tree.left
    in
    bst [] node.Dnstree.Tree.down
  in
  let label_code (node : Dnstree.Tree.node) =
    match Name.leftmost node.Dnstree.Tree.name with
    | Some l -> Label.Coder.code coder l
    | None -> invalid_arg "specsym: node without a label"
  in
  (* Invariant at [at_depth node depth]: pc entails len ≥ depth and
     labels 0..depth-1 equal node's name. *)
  let rec at_depth (node : Dnstree.Tree.node) (depth : int) pc : spath list =
    let name = node.Dnstree.Tree.name in
    (* Delegation cuts shadow everything at or below them (RFC descent
       stops at the first cut). *)
    if Zone.is_delegation z name then
      finish pc (referral_resp z name ~answer:[])
    else
      branch ctx pc
        (Term.eq qsym_len (Term.int depth))
        ~then_:(fun pc -> finish pc (at_node ctx name budget))
        ~else_:(fun pc -> descend node depth pc)
  and descend node depth pc : spath list =
    (* len > depth: qname is strictly under [node]. *)
    let rec try_kids pc = function
      | [] ->
          (* No existing child matches the next label: [node] is the
             closest encloser; wildcard synthesis or NXDOMAIN. *)
          finish pc (wildcard_at ctx node.Dnstree.Tree.name budget)
      | child :: rest ->
          branch ctx pc
            (Term.eq (qsym_label depth) (Term.int (label_code child)))
            ~then_:(fun pc -> at_depth child (depth + 1) pc)
            ~else_:(fun pc -> try_kids pc rest)
    in
    try_kids pc (children node)
  in
  (* Descend through the apex labels; any divergence or early end is an
     out-of-zone query (REFUSED). *)
  let apex_codes = codes_of coder (Zone.origin z) in
  let apex_len = List.length apex_codes in
  let rec match_apex j pc : spath list =
    if j = apex_len then at_depth (Dnstree.Tree.root tree) apex_len pc
    else
      branch ctx pc
        (Term.eq qsym_len (Term.int j))
        ~then_:(fun pc -> finish pc (response Message.Refused))
        ~else_:(fun pc ->
          branch ctx pc
            (Term.eq (qsym_label j) (Term.int (List.nth apex_codes j)))
            ~then_:(fun pc -> match_apex (j + 1) pc)
            ~else_:(fun pc -> finish pc (response Message.Refused)))
  in
  let pc0 = List.rev (domain_constraints ~max_labels) in
  let result = match_apex 0 pc0 in
  (result, ctx.solver_calls)

(* ------------------------------------------------------------------ *)
(* Concrete evaluation of a symbolic path/response against a model —
   used to validate Specsym against Spec.Rrlookup and to concretize
   counterexamples.                                                   *)
(* ------------------------------------------------------------------ *)

let query_of_model (coder : Label.Coder.t) (m : Smt.Model.t) ~(qtype : Rr.rtype)
    : Message.query =
  let len = Smt.Model.get_int "q.len" m in
  let len = if len < 0 then 0 else if len > Layout.max_labels then Layout.max_labels else len in
  let codes =
    List.init len (fun j -> Smt.Model.get_int (Printf.sprintf "q.n%d" j) m)
  in
  Message.query (Name.of_codes coder codes) qtype

let cond_holds (m : Smt.Model.t) (cond : Term.t list) : bool =
  List.for_all (fun t -> Smt.Model.satisfies m t) cond

(* Concretize an abstract response under a model. *)
let concretize_response (coder : Label.Coder.t) (m : Smt.Model.t)
    (r : sresponse) : Message.response =
  let qname =
    let len = Smt.Model.get_int "q.len" m in
    let codes =
      List.init (max 0 len) (fun j ->
          Smt.Model.get_int (Printf.sprintf "q.n%d" j) m)
    in
    Name.of_codes coder codes
  in
  let rr (s : srr) : Rr.t =
    let rname = match s.owner with Sym_query -> qname | Concrete n -> n in
    Rr.make rname s.srtype s.srdata
  in
  {
    Message.rcode = r.srcode;
    aa = r.saa;
    answer = List.map rr r.sanswer;
    authority = List.map rr r.sauthority;
    additional = List.map rr r.sadditional;
  }
