(* The §6.3 refinement: compareRaw (raw wire bytes, Figure 4) is
   equivalent to the word-level label classification that compareAbs
   (Figure 10) computes.

   The abstraction relation maps a wire-byte name to its label vector;
   two labels are abstractly equal iff their bytes are. As in the paper,
   the second argument is always a *concrete* name from the domain tree,
   and the total length of the symbolic name is bounded; we additionally
   concretize the symbolic name's label *structure* (the sequence of
   label lengths) and leave every content byte symbolic — the
   concretization technique §5.1 describes for the few functions that
   index arrays with data-dependent offsets. For each structure,
   full-path symbolic execution of compareRaw must classify exactly as
   the abstract comparison does, for all byte contents. *)

module Term = Smt.Term
module Solver = Smt.Solver
module Name = Dns.Name
module Layout = Dnstree.Layout
module Name_raw = Engine.Name_raw
module Sval = Symex.Sval
module Exec = Symex.Exec
type case_report = {
  structure : int list;
  against : Name.t;
  paths : int;
  failures : string list;
}
type report = {
  cases : case_report list;
  total_paths : int;
  elapsed : float;
}
val ok : report -> bool
val byte_var : int -> Term.t
val symbolic_wire : int list -> Sval.scell * Term.t array option array
val label_eq :
  int list -> Term.t array option array -> Name.t -> int -> Term.t
val check_case : int list -> Name.t -> case_report
val structures : max_labels:int -> max_len:int -> int list list
val short_label_zone : Dns.Zone.t
val check :
  ?zone:Dns.Zone.t -> ?max_labels:int -> ?max_len:int -> unit -> report
val print : report -> unit
