(* The Table-2 bug registry: the nine production issues DNS-V found and
   prevented, reproduced as individually toggleable code-generation
   flags in the engine builder.

   Each flag corresponds to one Table-2 row; a version's historical flag
   set is defined in [Versions]. Turning every flag off yields the
   corrected engine, which must verify cleanly. *)

type flags = {
  bug1_missing_aa_on_nodata : bool;
      (* v1.0 — Wrong Flag: AA flag missing for certain authoritative
         answers (NODATA responses never set AA). *)
  bug2_extraneous_authority : bool;
      (* v1.0 — Wrong Authority: extraneous NS/SOA authority (apex NS
         records appended to the authority section of positive
         answers). *)
  bug3_mx_type_confusion : bool;
      (* v1.0 — Wrong Answer: incorrect resource record matching on MX
         (wrong type constant: MX queries match TXT rrsets). *)
  bug4_glue_first_only : bool;
      (* v2.0 — Wrong Additional: incomplete glue for certain queries
         (referral glue loop only visits the first NS target). *)
  bug5_wildcard_no_additional : bool;
      (* v2.0 — Wrong Additional: incomplete glue when handling wildcard
         (additional-section processing skipped for wildcard-synthesized
         answers). *)
  bug6_wildcard_scan_shallow : bool;
      (* v2.0 — Wrong Answer/rcode: incorrect domain tree search for
         certain wildcard domains (wildcard child scan inspects only the
         sibling-BST root instead of walking to the leftmost node). *)
  bug7_glue_ignores_cuts : bool;
      (* v2.0 — Wrong Additional: extraneous records in the additional
         section (glue emitted for targets occluded by a delegation
         cut). *)
  bug8_ent_wildcard_judgment : bool;
      (* v3.0/dev — Wrong Answer/rcode: incorrect judgments on certain
         wildcard domains (empty non-terminal exact matches treated as
         nonexistent, falling through to wildcard synthesis /
         NXDOMAIN). *)
  bug9_stack_peek_nil : bool;
      (* dev — Runtime Error: incomplete bug fix may cause invalid
         memory access (the bug-8 fix peeks at the traversal stack with
         an off-by-one index, dereferencing a nil node pointer on
         multi-label wildcard expansions). *)
}

let none =
  {
    bug1_missing_aa_on_nodata = false;
    bug2_extraneous_authority = false;
    bug3_mx_type_confusion = false;
    bug4_glue_first_only = false;
    bug5_wildcard_no_additional = false;
    bug6_wildcard_scan_shallow = false;
    bug7_glue_ignores_cuts = false;
    bug8_ent_wildcard_judgment = false;
    bug9_stack_peek_nil = false;
  }

(* Table-2 metadata for reporting. *)
type info = {
  index : int;
  version : string;
  classification : string;
  description : string;
}

let table2 : info list =
  [
    {
      index = 1;
      version = "1.0";
      classification = "Wrong Flag";
      description = "AA flag missing for certain authoritative answers";
    };
    {
      index = 2;
      version = "1.0";
      classification = "Wrong Authority";
      description = "Extraneous NS/SOA authority";
    };
    {
      index = 3;
      version = "1.0";
      classification = "Wrong Answer";
      description = "Incorrect resource record matching on MX";
    };
    {
      index = 4;
      version = "2.0";
      classification = "Wrong Additional";
      description = "Incomplete glue for certain queries";
    };
    {
      index = 5;
      version = "2.0";
      classification = "Wrong Additional";
      description = "Incomplete glue when handling wildcard";
    };
    {
      index = 6;
      version = "2.0";
      classification = "Wrong Answer/rcode";
      description = "Incorrect domain tree search for certain wildcard domains";
    };
    {
      index = 7;
      version = "2.0";
      classification = "Wrong Additional";
      description = "Extraneous records in the additional section";
    };
    {
      index = 8;
      version = "3.0/dev";
      classification = "Wrong Answer/rcode";
      description = "Incorrect judgments on certain wildcard domains";
    };
    {
      index = 9;
      version = "dev";
      classification = "Runtime Error";
      description = "Incomplete bug fix may cause invalid memory access";
    };
  ]

let info index = List.find (fun i -> i.index = index) table2

(* The indices active in a flag set. *)
let active (f : flags) : int list =
  List.filter_map
    (fun (i, b) -> if b then Some i else None)
    [
      (1, f.bug1_missing_aa_on_nodata);
      (2, f.bug2_extraneous_authority);
      (3, f.bug3_mx_type_confusion);
      (4, f.bug4_glue_first_only);
      (5, f.bug5_wildcard_no_additional);
      (6, f.bug6_wildcard_scan_shallow);
      (7, f.bug7_glue_ignores_cuts);
      (8, f.bug8_ent_wildcard_judgment);
      (9, f.bug9_stack_peek_nil);
    ]
