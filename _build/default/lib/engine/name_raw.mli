(* The raw byte-level Name module (§3.4, Figure 4).

   Production code represents domain names as raw wire bytes
   (length-prefixed labels, zero-terminated: "\003www\007example\003com\000")
   and compares them byte by byte from the last position. This is the
   low-level implementation the paper's §6.3 lifts to the word-level
   compareAbs (Figure 10): the byte grinding below is verified
   equivalent to the label-integer comparison by Refine.Raw_name.

   The whole-engine verification then works over the abstract label-code
   representation — justified by exactly this refinement. *)

module Layout = Dnstree.Layout
val max_bytes : int
val tbytes : Golite.Dsl.ty
val toffsets : Golite.Dsl.ty
val fn_label_offsets : Golite.Dsl.func
val fn_compare_raw : Golite.Dsl.func
val golite_program : Golite.Ast.program
val compiled : Minir.Instr.program Lazy.t
val wire_bytes : Dns.Name.t -> int array
