(* The raw byte-level Name module (§3.4, Figure 4).

   Production code represents domain names as raw wire bytes
   (length-prefixed labels, zero-terminated: "\003www\007example\003com\000")
   and compares them byte by byte from the last position. This is the
   low-level implementation the paper's §6.3 lifts to the word-level
   compareAbs (Figure 10): the byte grinding below is verified
   equivalent to the label-integer comparison by Refine.Raw_name.

   The whole-engine verification then works over the abstract label-code
   representation — justified by exactly this refinement. *)

module Layout = Dnstree.Layout
open Golite.Dsl

(* Wire-name capacity: enough for max_labels short labels. *)
let max_bytes = 24
let tbytes = tarray tint max_bytes
let toffsets = tarray tint Layout.max_labels

(* Scan the length bytes and record each label's offset. Returns the
   label count, or -1 for malformed names (overlong / unterminated) —
   the defensive check in-production code carries. *)
let fn_label_offsets =
  func "labelOffsets"
    ~params:[ ("name", tbytes); ("offs", toffsets) ]
    ~ret:(Some tint)
    [
      decl_init "i" tint (i 0);
      decl_init "count" tint (i 0);
      while_ (b true)
        [
          decl_init "len" tint (v "name" %@ v "i");
          when_ (v "len" == i 0) [ return (v "count") ];
          when_ (v "len" < i 0) [ return (i (-1)) ];
          when_ (v "count" >= i Layout.max_labels) [ return (i (-1)) ];
          set_index (v "offs") (v "count") (v "i");
          set "count" (v "count" + i 1);
          set "i" (v "i" + v "len" + i 1);
          when_ (v "i" >= i max_bytes) [ return (i (-1)) ];
        ];
      return (i (-1));
    ]

(* compareRaw (Figure 4): classify two wire names by comparing labels
   from the last position, byte by byte within each label. Returns
   NOMATCH / EXACTMATCH / PARTIALMATCH (n2 a proper ancestor of n1). *)
let fn_compare_raw =
  func "compareRaw"
    ~params:[ ("n1", tbytes); ("n2", tbytes) ]
    ~ret:(Some tint)
    [
      decl "offs1" toffsets;
      decl "offs2" toffsets;
      decl_init "c1" tint (call "labelOffsets" [ v "n1"; v "offs1" ]);
      decl_init "c2" tint (call "labelOffsets" [ v "n2"; v "offs2" ]);
      when_ (v "c1" < i 0 || v "c2" < i 0) [ return (i Layout.nomatch) ];
      decl_init "k" tint (i 0);
      while_ (v "k" < v "c1" && v "k" < v "c2")
        [
          (* The k-th labels from the end. *)
          decl_init "o1" tint (v "offs1" %@ (v "c1" - i 1 - v "k"));
          decl_init "o2" tint (v "offs2" %@ (v "c2" - i 1 - v "k"));
          decl_init "l1" tint (v "n1" %@ v "o1");
          decl_init "l2" tint (v "n2" %@ v "o2");
          when_ (v "l1" != v "l2") [ return (i Layout.nomatch) ];
          decl_init "j" tint (i 1);
          while_ (v "j" <= v "l1")
            [
              when_
                (v "n1" %@ (v "o1" + v "j") != v "n2" %@ (v "o2" + v "j"))
                [ return (i Layout.nomatch) ];
              set "j" (v "j" + i 1);
            ];
          set "k" (v "k" + i 1);
        ];
      when_ (v "c1" == v "c2") [ return (i Layout.exactmatch) ];
      when_ (v "c1" > v "c2") [ return (i Layout.partialmatch) ];
      return (i Layout.nomatch);
    ]

let golite_program : Golite.Ast.program =
  program [] [ fn_label_offsets; fn_compare_raw ]

let compiled : Minir.Instr.program Lazy.t =
  lazy (Golite.Compile.compile golite_program)

(* Encode a concrete domain name as a padded wire-byte array. *)
let wire_bytes (name : Dns.Name.t) : int array =
  Stdlib.(
    let bytes = Dns.Name.to_wire name in
    if List.length bytes > max_bytes then
      invalid_arg "Name_raw.wire_bytes: name too long";
    let arr = Array.make max_bytes 0 in
    List.iteri (fun k byte -> arr.(k) <- byte) bytes;
    arr)
