module Layout = Dnstree.Layout

(* The in-production DNS authoritative engine, in Golite.

   One parameterized builder generates every version of Table 2/3: the
   [config] selects the feature set (v2.0's rewritten additional module,
   v3.0's SRV support, dev's ENT fix) and which seeded bugs are present.
   The code deliberately reproduces the in-production idioms the paper
   wrestles with (§3.3, §3.4): control flags threaded through calls,
   integer action codes instead of sum types, direct access to
   NodeStack.level from outside the stack module (Figure 3), and raw
   index arithmetic over fixed-capacity arrays. *)

type config = {
  version : string;
  bugs : Bugs.flags;
  has_srv : bool; (* v3.0+: SRV additional-section processing *)
}

(* Layer classification for the DNS-V pipeline (Figure 5): yellow layers
   get manual specifications, blue layers are summarized. *)
let manual_layers =
  [
    "compareNames"; "nameOrder"; "copyNameInto"; "stackPush"; "findRRSet";
    "appendAnswer"; "appendAuthority"; "appendAdditional";
  ]

let summarized_layers =
  [
    "findRRSetForQuery"; "isDelegation"; "findWildcardChild"; "treeSearch";
    "appendSetAsAnswers"; "appendSOAAuthority"; "glueForTarget";
    "additionalForSet"; "buildReferral"; "answerAt"; "wildcardLookup";
    "resolve";
  ]

let maxl = Layout.max_labels
let maxrr = Layout.max_rrs
let maxadd = Layout.max_additional

(* rtype codes (match Dns.Rr.rtype_code) *)
let c_a = 1
let c_ns = 2
let c_cname = 5
let c_soa = 6
let c_mx = 15
let c_txt = 16
let c_aaaa = 28
let c_srv = 33

(* rcodes *)
let rc_noerror = 0
let rc_servfail = 2
let rc_nxdomain = 3
let rc_refused = 5

let cname_chain_budget = 8

open Golite.Dsl

let tnode = tstruct "TreeNode"
let pnode = tptr tnode
let tname = tarray tint maxl
let presp = tptr (tstruct "Response")
let prdata = tptr (tstruct "Rdata")
let prrset = tptr (tstruct "RRSet")
let pstack = tptr (tstruct "NodeStack")
let pres = tptr (tstruct "SearchResult")

(* ------------------------------------------------------------------ *)
(* Name layer (manual specs in the pipeline)                          *)
(* ------------------------------------------------------------------ *)

(* compareNames(a, alen, b, blen): NOMATCH / EXACTMATCH / PARTIALMATCH.
   PARTIAL means b is a proper ancestor of a (names as reversed label
   code arrays). The abstract counterpart is Spec's compareAbs; the raw
   byte-level compareRaw lives in Name_raw and is verified equivalent. *)
let fn_compare_names =
  func "compareNames"
    ~params:[ ("a", tname); ("alen", tint); ("b", tname); ("blen", tint) ]
    ~ret:(Some tint)
    [
      when_ (v "alen" < v "blen") [ return (i Layout.nomatch) ];
      decl_init "k" tint (i 0);
      while_ (v "k" < v "blen")
        [
          when_ (v "a" %@ v "k" != v "b" %@ v "k") [ return (i Layout.nomatch) ];
          set "k" (v "k" + i 1);
        ];
      when_ (v "alen" == v "blen") [ return (i Layout.exactmatch) ];
      return (i Layout.partialmatch);
    ]

(* Lexicographic order over reversed code arrays: -1 / 0 / 1. *)
let fn_name_order =
  func "nameOrder"
    ~params:[ ("a", tname); ("alen", tint); ("b", tname); ("blen", tint) ]
    ~ret:(Some tint)
    [
      decl_init "k" tint (i 0);
      while_ (v "k" < v "alen" && v "k" < v "blen")
        [
          when_ (v "a" %@ v "k" < v "b" %@ v "k") [ return (i (-1)) ];
          when_ (v "a" %@ v "k" > v "b" %@ v "k") [ return (i 1) ];
          set "k" (v "k" + i 1);
        ];
      when_ (v "alen" < v "blen") [ return (i (-1)) ];
      when_ (v "alen" > v "blen") [ return (i 1) ];
      return (i 0);
    ]

let fn_copy_name_into =
  func "copyNameInto"
    ~params:[ ("dst", tname); ("src", tname); ("n", tint) ]
    ~ret:None
    [
      decl_init "k" tint (i 0);
      while_ (v "k" < v "n")
        [ set_index (v "dst") (v "k") (v "src" %@ v "k"); set "k" (v "k" + i 1) ];
      return_void;
    ]

(* ------------------------------------------------------------------ *)
(* NodeStack — the Figure-3 pattern: push encapsulates the store, but
   the level field is read and incremented directly by callers.       *)
(* ------------------------------------------------------------------ *)

let fn_stack_push =
  func "stackPush"
    ~params:[ ("s", tptr (tstruct "NodeStack")); ("n", pnode) ]
    ~ret:None
    [ set_index (v "s" %. "nodes") (v "s" %. "level") (v "n"); return_void ]

(* ------------------------------------------------------------------ *)
(* RRSet layer                                                        *)
(* ------------------------------------------------------------------ *)

let fn_find_rrset =
  func "findRRSet"
    ~params:[ ("node", pnode); ("rtype", tint) ]
    ~ret:(Some tint)
    [
      decl_init "k" tint (i 0);
      while_ (v "k" < v "node" %. "nsets")
        [
          when_ (v "node" %. "rrsets" %@ v "k" %. "rtype" == v "rtype")
            [ return (v "k") ];
          set "k" (v "k" + i 1);
        ];
      return (i (-1));
    ]

(* The query-facing rrset lookup, where bug 3 lives: the v1.0 match
   table confuses the MX type constant with TXT's. *)
let fn_find_rrset_for_query (cfg : config) =
  func "findRRSetForQuery"
    ~params:[ ("node", pnode); ("qtype", tint) ]
    ~ret:(Some tint)
    ([ decl_init "want" tint (v "qtype") ]
    @ (if cfg.bugs.Bugs.bug3_mx_type_confusion then
         [ when_ (v "qtype" == i c_mx) [ set "want" (i c_txt) ] ]
       else [])
    @ [ return (call "findRRSet" [ v "node"; v "want" ]) ])

let fn_is_delegation =
  func "isDelegation"
    ~params:[ ("node", pnode); ("root", pnode) ]
    ~ret:(Some tbool)
    [
      when_ (v "node" == v "root") [ return (b false) ];
      return (call "findRRSet" [ v "node"; i c_ns ] >= i 0);
    ]

(* ------------------------------------------------------------------ *)
(* TreeSearch (summarized layer; §6.4)                                *)
(* ------------------------------------------------------------------ *)

let fn_tree_search =
  func "treeSearch"
    ~params:
      [
        ("root", pnode); ("s", pstack); ("res", pres); ("qname", tname);
        ("qlen", tint); ("stopAtDelegation", tbool);
      ]
    ~ret:None
    [
      decl_init "cur" pnode (v "root");
      decl_init "closest" pnode (v "root");
      while_
        (v "cur" != nil tnode)
        [
          decl_init "cmp" tint
            (call "compareNames"
               [ v "qname"; v "qlen"; v "cur" %. "labels"; v "cur" %. "labelsLen" ]);
          if_ (v "cmp" == i Layout.exactmatch)
            [
              expr (call "stackPush" [ v "s"; v "cur" ]);
              set_field (v "s") "level" (v "s" %. "level" + i 1);
              set_field (v "res") "node" (v "cur");
              set_field (v "res") "kind" (i Layout.k_exact);
              return_void;
            ]
            [
              if_ (v "cmp" == i Layout.partialmatch)
                [
                  expr (call "stackPush" [ v "s"; v "cur" ]);
                  set_field (v "s") "level" (v "s" %. "level" + i 1);
                  set "closest" (v "cur");
                  (* The walk may terminate at a delegation node: further
                     resolution is not ours (§6.4's input flag). *)
                  when_
                    (v "stopAtDelegation"
                    && call "isDelegation" [ v "cur"; v "root" ])
                    [
                      set_field (v "res") "node" (v "cur");
                      set_field (v "res") "kind" (i Layout.k_delegation);
                      return_void;
                    ];
                  set "cur" (v "cur" %. "down");
                ]
                [
                  decl_init "ord" tint
                    (call "nameOrder"
                       [
                         v "qname"; v "qlen"; v "cur" %. "labels";
                         v "cur" %. "labelsLen";
                       ]);
                  if_ (v "ord" < i 0)
                    [ set "cur" (v "cur" %. "left") ]
                    [ set "cur" (v "cur" %. "right") ];
                ];
            ];
        ];
      set_field (v "res") "node" (v "closest");
      set_field (v "res") "kind" (i Layout.k_closest);
      return_void;
    ]

(* Wildcard child scan: correct code walks the sibling BST to its
   leftmost node ('*' has the smallest label code); bug 6 only inspects
   the BST root. *)
let fn_find_wildcard_child (cfg : config) =
  func "findWildcardChild"
    ~params:[ ("node", pnode) ]
    ~ret:(Some pnode)
    ([ decl_init "c" pnode (v "node" %. "down");
       when_ (v "c" == nil tnode) [ return (nil tnode) ] ]
    @ (if cfg.bugs.Bugs.bug6_wildcard_scan_shallow then []
       else
         [
           while_
             (v "c" %. "left" != nil tnode)
             [ set "c" (v "c" %. "left") ];
         ])
    @ [
        when_ (v "c" %. "isWildcard") [ return (v "c") ];
        return (nil tnode);
      ])

(* ------------------------------------------------------------------ *)
(* Response section appends (manual-spec layers)                      *)
(* ------------------------------------------------------------------ *)

(* Append one record built from (rname, rtype, rdata) to a section.
   Capacity overflow drops the record: the additional section is
   best-effort (like a UDP-limited responder); answer/authority never
   reach the cap under the chase budget. *)
let append_fn fn_name ~count_field ~section_field ~cap =
  func fn_name
    ~params:
      [
        ("resp", presp); ("rname", tname); ("rnameLen", tint); ("rtype", tint);
        ("rd", prdata);
      ]
    ~ret:None
    [
      decl_init "idx" tint (v "resp" %. count_field);
      when_ (v "idx" >= i cap) [ return_void ];
      decl_init "slot" (tptr (tstruct "RR")) (v "resp" %. section_field %@ v "idx");
      expr (call "copyNameInto" [ v "slot" %. "rname"; v "rname"; v "rnameLen" ]);
      set_field (v "slot") "rnameLen" (v "rnameLen");
      set_field (v "slot") "rtype" (v "rtype");
      expr
        (call "copyNameInto"
           [ v "slot" %. "target"; v "rd" %. "target"; v "rd" %. "targetLen" ]);
      set_field (v "slot") "targetLen" (v "rd" %. "targetLen");
      set_field (v "slot") "hasTarget" (v "rd" %. "hasTarget");
      set_field (v "slot") "dataId" (v "rd" %. "dataId");
      set_field (v "resp") count_field (v "idx" + i 1);
      return_void;
    ]

let fn_append_answer =
  append_fn "appendAnswer" ~count_field:"nanswer" ~section_field:"answer"
    ~cap:maxrr

let fn_append_authority =
  append_fn "appendAuthority" ~count_field:"nauthority"
    ~section_field:"authority" ~cap:maxrr

let fn_append_additional =
  append_fn "appendAdditional" ~count_field:"nadditional"
    ~section_field:"additional" ~cap:maxadd

(* Append a whole rrset as answers owned by [owner]. *)
let fn_append_set_as_answers =
  func "appendSetAsAnswers"
    ~params:
      [ ("resp", presp); ("owner", tname); ("ownerLen", tint); ("set", prrset) ]
    ~ret:None
    [
      decl_init "k" tint (i 0);
      while_ (v "k" < v "set" %. "count")
        [
          expr
            (call "appendAnswer"
               [
                 v "resp"; v "owner"; v "ownerLen"; v "set" %. "rtype";
                 v "set" %. "rdatas" %@ v "k";
               ]);
          set "k" (v "k" + i 1);
        ];
      return_void;
    ]

let fn_append_soa_authority =
  func "appendSOAAuthority"
    ~params:[ ("resp", presp); ("root", pnode) ]
    ~ret:None
    [
      decl_init "si" tint (call "findRRSet" [ v "root"; i c_soa ]);
      when_ (v "si" >= i 0)
        [
          expr
            (call "appendAuthority"
               [
                 v "resp"; v "root" %. "labels"; v "root" %. "labelsLen";
                 i c_soa; v "root" %. "rrsets" %@ v "si" %. "rdatas" %@ i 0;
               ]);
        ];
      return_void;
    ]

(* v1.0's extraneous-authority habit (bug 2): apex NS records appended
   to the authority section of positive answers. *)
let fn_append_apex_ns =
  func "appendApexNS"
    ~params:[ ("resp", presp); ("root", pnode) ]
    ~ret:None
    [
      decl_init "ni" tint (call "findRRSet" [ v "root"; i c_ns ]);
      when_ (v "ni" >= i 0)
        [
          decl_init "k" tint (i 0);
          while_ (v "k" < v "root" %. "rrsets" %@ v "ni" %. "count")
            [
              expr
                (call "appendAuthority"
                   [
                     v "resp"; v "root" %. "labels"; v "root" %. "labelsLen";
                     i c_ns; v "root" %. "rrsets" %@ v "ni" %. "rdatas" %@ v "k";
                   ]);
              set "k" (v "k" + i 1);
            ];
        ];
      return_void;
    ]

(* ------------------------------------------------------------------ *)
(* Glue and additional-section processing (summarized layers)         *)
(* ------------------------------------------------------------------ *)

(* In-zone A/AAAA records of [target], appended to the additional
   section. Glue lives below cuts, so this search does not stop at
   delegations. *)
let fn_glue_for_target =
  func "glueForTarget"
    ~params:[ ("root", pnode); ("resp", presp); ("target", tname); ("tlen", tint) ]
    ~ret:None
    [
      when_
        (call "compareNames"
           [ v "target"; v "tlen"; v "root" %. "labels"; v "root" %. "labelsLen" ]
        == i Layout.nomatch)
        [ return_void ];
      decl_init "stk" pstack (new_ (tstruct "NodeStack"));
      decl_init "res" pres (new_ (tstruct "SearchResult"));
      expr
        (call "treeSearch"
           [ v "root"; v "stk"; v "res"; v "target"; v "tlen"; b false ]);
      when_ (v "res" %. "kind" != i Layout.k_exact) [ return_void ];
      decl_init "node" pnode (v "res" %. "node");
      decl_init "ai" tint (call "findRRSet" [ v "node"; i c_a ]);
      when_ (v "ai" >= i 0)
        [
          decl_init "k" tint (i 0);
          while_ (v "k" < v "node" %. "rrsets" %@ v "ai" %. "count")
            [
              expr
                (call "appendAdditional"
                   [
                     v "resp"; v "node" %. "labels"; v "node" %. "labelsLen";
                     i c_a; v "node" %. "rrsets" %@ v "ai" %. "rdatas" %@ v "k";
                   ]);
              set "k" (v "k" + i 1);
            ];
        ];
      decl_init "bi" tint (call "findRRSet" [ v "node"; i c_aaaa ]);
      when_ (v "bi" >= i 0)
        [
          decl_init "k2" tint (i 0);
          while_ (v "k2" < v "node" %. "rrsets" %@ v "bi" %. "count")
            [
              expr
                (call "appendAdditional"
                   [
                     v "resp"; v "node" %. "labels"; v "node" %. "labelsLen";
                     i c_aaaa; v "node" %. "rrsets" %@ v "bi" %. "rdatas" %@ v "k2";
                   ]);
              set "k2" (v "k2" + i 1);
            ];
        ];
      return_void;
    ]

(* Additional-section processing for a positive answer set: chase the
   rdata targets of MX / NS (and SRV from v3.0 on), skipping targets
   occluded by a delegation cut. Bug 7 drops the occlusion check; bug 5
   skips the whole pass for wildcard-synthesized answers. *)
let fn_additional_for_set (cfg : config) =
  let wants_additional =
    let base = v "set" %. "rtype" == i c_mx || v "set" %. "rtype" == i c_ns in
    if cfg.has_srv then base || v "set" %. "rtype" == i c_srv else base
  in
  let glue_call =
    if cfg.bugs.Bugs.bug7_glue_ignores_cuts then
      [
        expr
          (call "glueForTarget"
             [ v "root"; v "resp"; v "rd" %. "target"; v "rd" %. "targetLen" ]);
      ]
    else
      [
        when_
          (call "compareNames"
             [
               v "rd" %. "target"; v "rd" %. "targetLen"; v "root" %. "labels";
               v "root" %. "labelsLen";
             ]
          != i Layout.nomatch)
          [
            decl_init "stk" pstack (new_ (tstruct "NodeStack"));
            decl_init "res" pres (new_ (tstruct "SearchResult"));
            expr
              (call "treeSearch"
                 [
                   v "root"; v "stk"; v "res"; v "rd" %. "target";
                   v "rd" %. "targetLen"; b true;
                 ]);
            decl_init "occluded" tbool (v "res" %. "kind" == i Layout.k_delegation);
            when_
              (v "res" %. "kind" == i Layout.k_exact
              && call "isDelegation" [ v "res" %. "node"; v "root" ])
              [ set "occluded" (b true) ];
            when_ (not_ (v "occluded"))
              [
                expr
                  (call "glueForTarget"
                     [ v "root"; v "resp"; v "rd" %. "target"; v "rd" %. "targetLen" ]);
              ];
          ];
      ]
  in
  func "additionalForSet"
    ~params:
      [ ("root", pnode); ("resp", presp); ("set", prrset); ("viaWildcard", tbool) ]
    ~ret:None
    ((if cfg.bugs.Bugs.bug5_wildcard_no_additional then
        [ when_ (v "viaWildcard") [ return_void ] ]
      else [])
    @ [
        when_ (not_ wants_additional) [ return_void ];
        decl_init "k" tint (i 0);
        while_ (v "k" < v "set" %. "count")
          ([ decl_init "rd" prdata (v "set" %. "rdatas" %@ v "k") ]
          @ [ when_ (v "rd" %. "hasTarget") glue_call ]
          @ [ set "k" (v "k" + i 1) ]);
        return_void;
      ])

(* Referral construction at a delegation cut: NS records into the
   authority section, then glue per target (bug 4 visits only the
   first). *)
let fn_build_referral (cfg : config) =
  let glue_limit =
    if cfg.bugs.Bugs.bug4_glue_first_only then i 1 else v "set" %. "count"
  in
  func "buildReferral"
    ~params:[ ("root", pnode); ("resp", presp); ("cut", pnode) ]
    ~ret:None
    [
      decl_init "ni" tint (call "findRRSet" [ v "cut"; i c_ns ]);
      when_ (v "ni" < i 0)
        [ set_field (v "resp") "rcode" (i rc_servfail); return_void ];
      decl_init "set" prrset (v "cut" %. "rrsets" %@ v "ni");
      decl_init "k" tint (i 0);
      while_ (v "k" < v "set" %. "count")
        [
          expr
            (call "appendAuthority"
               [
                 v "resp"; v "cut" %. "labels"; v "cut" %. "labelsLen"; i c_ns;
                 v "set" %. "rdatas" %@ v "k";
               ]);
          set "k" (v "k" + i 1);
        ];
      decl_init "g" tint (i 0);
      while_ (v "g" < glue_limit)
        [
          decl_init "rd" prdata (v "set" %. "rdatas" %@ v "g");
          when_ (v "rd" %. "hasTarget")
            [
              expr
                (call "glueForTarget"
                   [ v "root"; v "resp"; v "rd" %. "target"; v "rd" %. "targetLen" ]);
            ];
          set "g" (v "g" + i 1);
        ];
      set_field (v "resp") "rcode" (i rc_noerror);
      return_void;
    ]

(* ------------------------------------------------------------------ *)
(* Node answering: exact or wildcard-synthesized (summarized layer).
   Returns an integer action code, in true in-production style (§3.3):
     -2            response complete;
     n >= 0        follow a CNAME whose target (length n) has been
                   copied into [owner]. *)
(* ------------------------------------------------------------------ *)

let fn_answer_at (cfg : config) =
  let body =
    [
      (* CNAME present and not asked for: answer it and chase. *)
      decl_init "ci" tint (call "findRRSet" [ v "node"; i c_cname ]);
      when_ (v "ci" >= i 0 && v "qtype" != i c_cname)
        [
          decl_init "rd" prdata (v "node" %. "rrsets" %@ v "ci" %. "rdatas" %@ i 0);
          expr
            (call "appendAnswer"
               [ v "resp"; v "owner"; v "ownerLen"; i c_cname; v "rd" ]);
          set_field (v "resp") "aa" (b true);
          when_
            (call "compareNames"
               [
                 v "rd" %. "target"; v "rd" %. "targetLen"; v "root" %. "labels";
                 v "root" %. "labelsLen";
               ]
            == i Layout.nomatch)
            [
              (* Out-of-zone target: the recursor takes over. *)
              set_field (v "resp") "rcode" (i rc_noerror);
              return (i (-2));
            ];
          expr
            (call "copyNameInto" [ v "owner"; v "rd" %. "target"; v "rd" %. "targetLen" ]);
          return (v "rd" %. "targetLen");
        ];
      decl_init "ti" tint (call "findRRSetForQuery" [ v "node"; v "qtype" ]);
      when_ (v "ti" >= i 0)
        ([
           decl_init "set" prrset (v "node" %. "rrsets" %@ v "ti");
           expr
             (call "appendSetAsAnswers"
                [ v "resp"; v "owner"; v "ownerLen"; v "set" ]);
           set_field (v "resp") "aa" (b true);
           set_field (v "resp") "rcode" (i rc_noerror);
           expr
             (call "additionalForSet"
                [ v "root"; v "resp"; v "set"; v "viaWildcard" ]);
         ]
        @ (if cfg.bugs.Bugs.bug2_extraneous_authority then
             [ expr (call "appendApexNS" [ v "resp"; v "root" ]) ]
           else [])
        @ [ return (i (-2)) ]);
      (* NODATA *)
      expr (call "appendSOAAuthority" [ v "resp"; v "root" ]);
      set_field (v "resp") "rcode" (i rc_noerror);
    ]
    @ (if cfg.bugs.Bugs.bug1_missing_aa_on_nodata then []
       else [ set_field (v "resp") "aa" (b true) ])
    @ [ return (i (-2)) ]
  in
  func "answerAt"
    ~params:
      [
        ("root", pnode); ("resp", presp); ("node", pnode); ("owner", tname);
        ("ownerLen", tint); ("qtype", tint); ("viaWildcard", tbool);
      ]
    ~ret:(Some tint) body

(* Wildcard lookup at the closest encloser. Action codes:
     -1   no wildcard (caller answers NXDOMAIN);
     else as answerAt. Dev's bug-9 peek dereferences an off-by-one
   stack slot on multi-label expansions. *)
let fn_wildcard_lookup (cfg : config) =
  func "wildcardLookup"
    ~params:
      [
        ("root", pnode); ("resp", presp); ("encloser", pnode); ("owner", tname);
        ("ownerLen", tint); ("qtype", tint); ("stk", pstack);
      ]
    ~ret:(Some tint)
    ([
       decl_init "wc" pnode (call "findWildcardChild" [ v "encloser" ]);
       when_ (v "wc" == nil tnode) [ return (i (-1)) ];
     ]
    @ (if cfg.bugs.Bugs.bug9_stack_peek_nil then
         [
           (* The incomplete bug-8 fix: on multi-label expansions,
              consult the traversal stack — with the wrong index. The
              slot at [level] was never written, so the node pointer is
              nil and the field read panics. *)
           when_
             (v "ownerLen" > v "encloser" %. "labelsLen" + i 1)
             [
               decl_init "top" pnode
                 (v "stk" %. "nodes" %@ (v "stk" %. "level"));
               when_ (v "top" %. "labelsLen" < i 0) [ return (i (-1)) ];
             ];
         ]
       else [])
    @ [
        return
          (call "answerAt"
             [
               v "root"; v "resp"; v "wc"; v "owner"; v "ownerLen"; v "qtype";
               b true;
             ]);
      ])

(* ------------------------------------------------------------------ *)
(* Resolve — the top-level entry point                                *)
(* ------------------------------------------------------------------ *)

let fn_resolve (cfg : config) =
  let dispatch_action =
    (* Shared handling of answerAt/wildcardLookup action codes inside the
       chase loop. The action variable is "act". *)
    [
      when_ (v "act" == i (-2)) [ return_void ];
      when_ (v "act" == i (-1))
        [
          set_field (v "resp") "rcode" (i rc_nxdomain);
          expr (call "appendSOAAuthority" [ v "resp"; v "root" ]);
          set_field (v "resp") "aa" (b true);
          return_void;
        ];
      (* CNAME chase: act is the new owner length. *)
      set "budget" (v "budget" - i 1);
      when_ (v "budget" == i 0)
        [
          set_field (v "resp") "rcode" (i rc_servfail);
          set_field (v "resp") "aa" (b false);
          return_void;
        ];
      set "curLen" (v "act");
    ]
  in
  func "resolve"
    ~params:
      [
        ("root", pnode); ("resp", presp); ("qname", tname); ("qlen", tint);
        ("qtype", tint);
      ]
    ~ret:None
    [
      (* Out-of-zone queries are refused. *)
      when_
        (call "compareNames"
           [ v "qname"; v "qlen"; v "root" %. "labels"; v "root" %. "labelsLen" ]
        == i Layout.nomatch)
        [ set_field (v "resp") "rcode" (i rc_refused); return_void ];
      decl "curName" tname;
      expr (call "copyNameInto" [ v "curName"; v "qname"; v "qlen" ]);
      decl_init "curLen" tint (v "qlen");
      decl_init "budget" tint (i cname_chain_budget);
      while_ (b true)
        ([
           decl_init "stk" pstack (new_ (tstruct "NodeStack"));
           decl_init "res" pres (new_ (tstruct "SearchResult"));
           expr
             (call "treeSearch"
                [ v "root"; v "stk"; v "res"; v "curName"; v "curLen"; b true ]);
           decl_init "kind" tint (v "res" %. "kind");
           decl_init "node" pnode (v "res" %. "node");
           when_ (v "kind" == i Layout.k_delegation)
             [ expr (call "buildReferral" [ v "root"; v "resp"; v "node" ]); return_void ];
         ]
        @ [
            if_ (v "kind" == i Layout.k_exact)
              ([
                 when_
                   (call "isDelegation" [ v "node"; v "root" ])
                   [
                     expr (call "buildReferral" [ v "root"; v "resp"; v "node" ]);
                     return_void;
                   ];
               ]
              @ (if cfg.bugs.Bugs.bug8_ent_wildcard_judgment then
                   [
                     (* v3.0's misguided shortcut: an exact node without
                        data is treated as nonexistent, falling through
                        to wildcard synthesis / NXDOMAIN. *)
                     when_
                       (not_ (v "node" %. "hasData"))
                       ([
                          decl_init "act" tint
                            (call "wildcardLookup"
                               [
                                 v "root"; v "resp"; v "node"; v "curName";
                                 v "curLen"; v "qtype"; v "stk";
                               ]);
                        ]
                       @ dispatch_action
                       @ [ continue_ ]);
                   ]
                 else [])
              @ [
                  decl_init "act" tint
                    (call "answerAt"
                       [
                         v "root"; v "resp"; v "node"; v "curName"; v "curLen";
                         v "qtype"; b false;
                       ]);
                ]
              @ dispatch_action
              @ [ continue_ ])
              (* KCLOSEST: the name does not exist; try the wildcard. *)
              ([
                 decl_init "act" tint
                   (call "wildcardLookup"
                      [
                        v "root"; v "resp"; v "node"; v "curName"; v "curLen";
                        v "qtype"; v "stk";
                      ]);
               ]
              @ dispatch_action
              @ [ continue_ ]);
          ]);
      return_void;
    ]

(* ------------------------------------------------------------------ *)
(* Whole-program assembly                                             *)
(* ------------------------------------------------------------------ *)

let golite_program (cfg : config) : Golite.Ast.program =
  program Layout.structs
    [
      fn_compare_names;
      fn_name_order;
      fn_copy_name_into;
      fn_stack_push;
      fn_find_rrset;
      fn_find_rrset_for_query cfg;
      fn_is_delegation;
      fn_tree_search;
      fn_find_wildcard_child cfg;
      fn_append_answer;
      fn_append_authority;
      fn_append_additional;
      fn_append_set_as_answers;
      fn_append_soa_authority;
      fn_append_apex_ns;
      fn_glue_for_target;
      fn_additional_for_set cfg;
      fn_build_referral cfg;
      fn_answer_at cfg;
      fn_wildcard_lookup cfg;
      fn_resolve cfg;
    ]

let compile (cfg : config) : Minir.Instr.program =
  Golite.Compile.compile (golite_program cfg)
