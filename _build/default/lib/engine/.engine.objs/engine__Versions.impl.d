lib/engine/versions.ml: Bugs Builder Dns Dnstree Hashtbl List Minir Option String
