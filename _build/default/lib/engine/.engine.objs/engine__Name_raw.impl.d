lib/engine/name_raw.ml: Array Dns Dnstree Golite Lazy List Minir Stdlib
