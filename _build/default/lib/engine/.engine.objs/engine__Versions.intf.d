lib/engine/versions.mli: Builder Dns Dnstree Hashtbl Minir
