lib/engine/builder.ml: Bugs Dnstree Golite Minir
