lib/engine/bugs.mli:
