lib/engine/name_raw.mli: Dns Dnstree Golite Lazy Minir
