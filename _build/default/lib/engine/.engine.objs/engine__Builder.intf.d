lib/engine/builder.mli: Bugs Dnstree Golite Minir
