lib/engine/bugs.ml: List
