(* The Table-2 bug registry: the nine production issues DNS-V found and
   prevented, reproduced as individually toggleable code-generation
   flags in the engine builder.

   Each flag corresponds to one Table-2 row; a version's historical flag
   set is defined in [Versions]. Turning every flag off yields the
   corrected engine, which must verify cleanly. *)

type flags = {
  bug1_missing_aa_on_nodata : bool;
  bug2_extraneous_authority : bool;
  bug3_mx_type_confusion : bool;
  bug4_glue_first_only : bool;
  bug5_wildcard_no_additional : bool;
  bug6_wildcard_scan_shallow : bool;
  bug7_glue_ignores_cuts : bool;
  bug8_ent_wildcard_judgment : bool;
  bug9_stack_peek_nil : bool;
}
val none : flags
type info = {
  index : int;
  version : string;
  classification : string;
  description : string;
}
val table2 : info list
val info : int -> info
val active : flags -> int list
