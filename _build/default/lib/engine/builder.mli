
module Layout = Dnstree.Layout
type config = { version : string; bugs : Bugs.flags; has_srv : bool; }
val manual_layers : string list
val summarized_layers : string list
val maxl : int
val maxrr : int
val maxadd : int
val c_a : int
val c_ns : int
val c_cname : int
val c_soa : int
val c_mx : int
val c_txt : int
val c_aaaa : int
val c_srv : int
val rc_noerror : int
val rc_servfail : int
val rc_nxdomain : int
val rc_refused : int
val cname_chain_budget : int
val tnode : Golite.Dsl.ty
val pnode : Golite.Dsl.ty
val tname : Golite.Dsl.ty
val presp : Golite.Dsl.ty
val prdata : Golite.Dsl.ty
val prrset : Golite.Dsl.ty
val pstack : Golite.Dsl.ty
val pres : Golite.Dsl.ty
val fn_compare_names : Golite.Dsl.func
val fn_name_order : Golite.Dsl.func
val fn_copy_name_into : Golite.Dsl.func
val fn_stack_push : Golite.Dsl.func
val fn_find_rrset : Golite.Dsl.func
val fn_find_rrset_for_query : config -> Golite.Dsl.func
val fn_is_delegation : Golite.Dsl.func
val fn_tree_search : Golite.Dsl.func
val fn_find_wildcard_child : config -> Golite.Dsl.func
val append_fn :
  string ->
  count_field:string -> section_field:string -> cap:int -> Golite.Dsl.func
val fn_append_answer : Golite.Dsl.func
val fn_append_authority : Golite.Dsl.func
val fn_append_additional : Golite.Dsl.func
val fn_append_set_as_answers : Golite.Dsl.func
val fn_append_soa_authority : Golite.Dsl.func
val fn_append_apex_ns : Golite.Dsl.func
val fn_glue_for_target : Golite.Dsl.func
val fn_additional_for_set : config -> Golite.Dsl.func
val fn_build_referral : config -> Golite.Dsl.func
val fn_answer_at : config -> Golite.Dsl.func
val fn_wildcard_lookup : config -> Golite.Dsl.func
val fn_resolve : config -> Golite.Dsl.func
val golite_program : config -> Golite.Ast.program
val compile : config -> Minir.Instr.program
