(* Porting the verification across engine versions (§7, Table 3).

   The engine iterates: v2.0 → v3.0 rewrites resolution logic and adds
   SRV support. Porting DNS-V costs almost nothing because the
   dependency-layer specifications and the top-level specification are
   reused unchanged — only the implementation changed, and the
   summarized layers need no manual work at all (their summaries are
   recomputed automatically).

     dune exec examples/porting.exe *)

module Versions = Engine.Versions
module Builder = Engine.Builder
module Layers = Refine.Layers

let () =
  let v2 = Builder.golite_program Versions.v2_0 in
  let v3 = Builder.golite_program Versions.v3_0 in
  Printf.printf "Engine v2.0: %d statements; v3.0 changes %d statements in:\n"
    (Dnsv.Loc.program_size v2)
    (Dnsv.Loc.changed_size v2 v3);
  List.iter
    (fun (fn, n) -> Printf.printf "  %-20s (%d statements)\n" fn n)
    (Dnsv.Loc.changed_functions v2 v3);

  (* Step 1: the dependency-layer specifications are version-stable —
     the same manual specs verify against both versions' code. *)
  print_newline ();
  List.iter
    (fun version ->
      let prog = Versions.compiled (Versions.fixed version) in
      let reports = Layers.check_all prog in
      Printf.printf "dependency layers of %s-fixed: %s\n"
        version.Builder.version
        (if List.for_all Layers.layer_ok reports then
           Printf.sprintf "all %d verified against the unchanged specs"
             (List.length reports)
         else "FAILED"))
    [ Versions.v2_0; Versions.v3_0 ];

  (* Step 2: whole-engine verification of the new version. It fails —
     v3.0 shipped with the wildcard-judgment bug (Table 2 #8)… *)
  print_newline ();
  let w = Spec.Fixtures.witness 8 in
  let report =
    Refine.Check.check_version Versions.v3_0 w.Spec.Fixtures.zone
      ~qtype:Dns.Rr.A
  in
  (match report.Refine.Check.mismatches with
  | m :: _ ->
      Format.printf
        "verifying v3.0 catches the new iteration's bug:@.  %a — %s@."
        Dns.Message.pp_query m.Refine.Check.query m.Refine.Check.detail
  | [] -> print_endline "unexpectedly clean");

  (* Step 3: …and the corrected v3.0 verifies clean with zero changes to
     any specification. *)
  let fixed_report =
    Refine.Check.check_version (Versions.fixed Versions.v3_0)
      w.Spec.Fixtures.zone ~qtype:Dns.Rr.A
  in
  Printf.printf
    "after the fix, v3.0 verifies clean: %b (specs changed: none)\n"
    (Refine.Check.ok fixed_report);
  Printf.printf
    "\nTotal porting input: the implementation diff above. Everything else\n\
     (dependency specs, interface configuration, top-level spec) is reused.\n"
