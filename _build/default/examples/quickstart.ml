(* Quickstart: verify a DNS authoritative engine version against the
   RFC-derived top-level specification in a few lines.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A zone configuration — the control-plane input (§6.5). You can
     also parse one from text with Dns.Zonefile.parse. *)
  let n = Dns.Name.of_string_exn in
  let origin = n "example.com" in
  let zone =
    Dns.Zone.make origin
      [
        Dns.Rr.soa origin ~mname:(n "ns1.example.com") ~serial:2026;
        Dns.Rr.ns origin (n "ns1.example.com");
        Dns.Rr.a (n "ns1.example.com") 100;
        Dns.Rr.a (n "www.example.com") 1;
        Dns.Rr.mx origin 10 (n "mail.example.com");
        Dns.Rr.a (n "mail.example.com") 2;
        Dns.Rr.a (n "*.apps.example.com") 3;
      ]
  in
  assert (Dns.Zone.is_valid zone);

  (* 2. Pick an engine version. Historical versions carry their seeded
     Table-2 bugs; the "-fixed" variants are corrected. *)
  let engine = Engine.Versions.fixed Engine.Versions.v3_0 in

  (* 3. Verify: dependency layers against manual specs, then the whole
     engine (with automatic summaries) against the top-level spec. *)
  let verdict =
    Dnsv.Pipeline.verify ~qtypes:[ Dns.Rr.A; Dns.Rr.MX ] engine zone
  in
  print_string (Dnsv.Pipeline.verdict_to_string verdict);

  (* 4. The engine also runs concretely, so you can serve real queries
     and compare against the executable specification. *)
  let q = Dns.Message.query (n "anything.apps.example.com") Dns.Rr.A in
  (match Engine.Versions.run engine zone q with
  | Engine.Versions.Response r ->
      Format.printf "@.concrete run of %a@.%a" Dns.Message.pp_query q
        Dns.Message.pp_response r
  | Engine.Versions.Engine_panic m -> Format.printf "engine panic: %s@." m);
  Format.printf "@.specification agrees: %b@."
    (let spec = Spec.Rrlookup.resolve zone q in
     match Engine.Versions.run engine zone q with
     | Engine.Versions.Response r -> Dns.Message.equal_response r spec
     | Engine.Versions.Engine_panic _ -> false);
  if not (Dnsv.Pipeline.clean verdict) then exit 1
