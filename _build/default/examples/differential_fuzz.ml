(* Differential testing at scale (the SCALE-style baseline the paper
   compares against in §10): run engine versions concretely against the
   executable specification on thousands of generated zone/query pairs.

   Differential testing catches a bug only if a generated input trips
   it; verification proves the absence of bugs per zone snapshot. This
   example shows both sides: the corrected engine survives the fuzzing,
   and the buggy versions are (only sometimes!) caught — wildcard bugs
   in particular need specific shapes that random queries rarely hit,
   which is the paper's argument for verification.

     dune exec examples/differential_fuzz.exe *)

module Message = Dns.Message
module Layout = Dnstree.Layout

let trials = 2_000

let fuzz cfg ~seed =
  let caught = ref 0 and ran = ref 0 in
  let first_witness = ref None in
  for i = 0 to trials - 1 do
    let zone =
      Dns.Zonegen.generate ~seed:(seed + (i / 10))
        (Dns.Name.of_string_exn "fuzz.example")
    in
    let rng = Random.State.make [| seed + i |] in
    let q = Dns.Zonegen.random_query ~rng zone in
    if Dns.Name.label_count q.Message.qname <= Layout.max_labels then begin
      incr ran;
      let spec = Spec.Rrlookup.resolve zone q in
      let diverges =
        match Engine.Versions.run cfg zone q with
        | Engine.Versions.Response r -> not (Message.equal_response r spec)
        | Engine.Versions.Engine_panic _ -> true
      in
      if diverges then begin
        incr caught;
        if !first_witness = None then
          first_witness := Some (Format.asprintf "%a" Message.pp_query q)
      end
    end
  done;
  (!ran, !caught, !first_witness)

let () =
  Printf.printf "%d random zone/query trials per engine version:\n\n" trials;
  Printf.printf "%-12s %8s %10s   %s\n" "version" "queries" "divergent"
    "first witness";
  List.iter
    (fun cfg ->
      let ran, caught, witness = fuzz cfg ~seed:7 in
      Printf.printf "%-12s %8d %10d   %s\n" cfg.Engine.Builder.version ran
        caught
        (Option.value ~default:"-" witness))
    (Engine.Versions.all @ [ Engine.Versions.fixed Engine.Versions.v3_0 ]);
  Printf.printf
    "\nRandom testing misses what verification proves absent: compare with\n\
     `dune exec bench/main.exe -- table2`, where every bug is caught with a\n\
     counterexample in under a second per version.\n"
