(* Bug hunt: reproduce the paper's Table-2 experience end to end.

   For every seeded production bug, DNS-V verifies the affected engine
   version, produces a counterexample query, and we *replay* that query
   concretely on the engine interpreter and the executable
   specification, printing the diverging responses side by side — the
   workflow a developer sees when verification fails.

     dune exec examples/bug_hunt.exe *)

module Message = Dns.Message

let () =
  List.iter
    (fun (info : Engine.Bugs.info) ->
      let w = Spec.Fixtures.witness info.Engine.Bugs.index in
      let cfg = Dnsv.Table2.config_for_bug info.Engine.Bugs.index in
      Printf.printf "%s\n" (String.make 74 '-');
      Printf.printf "Bug %d (v%s, %s): %s\n" info.Engine.Bugs.index
        info.Engine.Bugs.version info.Engine.Bugs.classification
        info.Engine.Bugs.description;
      let report =
        Refine.Check.check_version cfg w.Spec.Fixtures.zone
          ~qtype:w.Spec.Fixtures.query.Message.qtype
      in
      match (report.Refine.Check.panics, report.Refine.Check.mismatches) with
      | p :: _, _ ->
          Format.printf "verification found a reachable runtime error:@.";
          Format.printf "  query: %a@.  reason: %s@." Message.pp_query
            p.Refine.Check.panic_query p.Refine.Check.reason;
          (match
             Engine.Versions.run cfg w.Spec.Fixtures.zone
               p.Refine.Check.panic_query
           with
          | Engine.Versions.Engine_panic m ->
              Format.printf "  concrete replay panics: %s@." m
          | Engine.Versions.Response _ ->
              Format.printf "  (replay did not panic?!)@.")
      | [], m :: _ ->
          Format.printf "verification found a functional mismatch:@.";
          Format.printf "  query:  %a@.  detail: %s@." Message.pp_query
            m.Refine.Check.query m.Refine.Check.detail;
          Format.printf "@.  engine says:@.%s@.  specification says:@.%s@."
            m.Refine.Check.engine_replay m.Refine.Check.spec_replay
      | [], [] -> Format.printf "NOT CAUGHT — this should never happen@.")
    Engine.Bugs.table2;
  Printf.printf "%s\n" (String.make 74 '-');
  Printf.printf
    "All nine issues are caught before reaching production; the corrected\n\
     versions verify clean (run `dune exec bench/main.exe -- table2`).\n"
