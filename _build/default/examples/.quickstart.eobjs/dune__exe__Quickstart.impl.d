examples/quickstart.ml: Dns Dnsv Engine Format Spec
