examples/bug_hunt.ml: Dns Dnsv Engine Format List Printf Refine Spec String
