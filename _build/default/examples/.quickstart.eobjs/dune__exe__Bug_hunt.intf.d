examples/bug_hunt.mli:
