examples/quickstart.mli:
