examples/differential_fuzz.ml: Dns Dnstree Engine Format List Option Printf Random Spec
