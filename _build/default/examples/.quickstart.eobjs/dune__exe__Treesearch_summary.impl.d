examples/treesearch_summary.ml: Dnsv List Printf
