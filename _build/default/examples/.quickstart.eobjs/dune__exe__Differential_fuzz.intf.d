examples/differential_fuzz.mli:
