examples/porting.mli:
