examples/porting.ml: Dns Dnsv Engine Format List Printf Refine Spec
