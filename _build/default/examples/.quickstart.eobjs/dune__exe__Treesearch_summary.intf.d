examples/treesearch_summary.mli:
