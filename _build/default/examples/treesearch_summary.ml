(* Summarization in isolation: compute the summary specification of the
   TreeSearch layer over the paper's Figure-11 example domain tree and
   print the input-effect pairs — the paper's Table 1 (§6.4).

   Every path condition is simple linear integer arithmetic over the
   query-name label variables (q.n0, q.n1, …) and the length variable
   (q.len), which is exactly what makes summaries cheap for higher
   layers to consume.

     dune exec examples/treesearch_summary.exe *)

let () =
  let result = Dnsv.Table1.run () in
  Dnsv.Table1.print result;
  Printf.printf
    "\nThe paper's Table 1 lists 14 paths (P0-P13); we enumerate %d.\n"
    (List.length result.Dnsv.Table1.rows)
